"""Data-driven VQI maintenance for large networks.

The tutorial's first open problem (§2.5): large networks evolve
*continuously* (not in periodic batches like graph repositories), so
pattern maintenance needs a different trigger and a localized update.
This module implements that near-future direction in the spirit of
MIDAS:

* edge supports (triangle counts) are maintained **incrementally** —
  an edge insertion/deletion only touches the supports of edges
  incident to the endpoints' common neighbors;
* drift is the fraction of network edges whose support changed since
  the last pattern refresh — a structural analogue of MIDAS's
  graphlet-frequency drift that is O(1) to read;
* on a *major* drift, candidates are re-extracted **only from the
  changed region** (the updated endpoints plus one hop) and merged
  into the pattern set with the same multi-scan swapping strategy,
  inheriting its never-degrade guarantee.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import MaintenanceError, PipelineError
from repro.graph.graph import Graph, edge_key
from repro.graph.operations import induced_subgraph
from repro.midas.swapping import SwapStats, multi_scan_swap
from repro.patterns.base import Pattern, PatternBudget, PatternSet
from repro.patterns.index import CoverageIndex
from repro.patterns.scoring import DEFAULT_WEIGHTS, ScoreWeights
from repro.patterns.selection import SetScorer, greedy_select
from repro.tattoo.pipeline import TattooConfig, _run_tattoo, \
    extract_candidates
from repro.truss.decomposition import edge_support


class NetworkUpdate:
    """One burst of continuous network evolution.

    Node removals implicitly remove their incident edges; edge
    endpoints of ``added_edges`` must exist (add nodes first).
    """

    __slots__ = ("added_nodes", "added_edges", "removed_edges",
                 "removed_nodes")

    def __init__(self,
                 added_nodes: Sequence[Tuple[int, str]] = (),
                 added_edges: Sequence[Tuple[int, int, str]] = (),
                 removed_edges: Sequence[Tuple[int, int]] = (),
                 removed_nodes: Sequence[int] = ()) -> None:
        self.added_nodes = list(added_nodes)
        self.added_edges = list(added_edges)
        self.removed_edges = list(removed_edges)
        self.removed_nodes = list(removed_nodes)

    def is_empty(self) -> bool:
        return not (self.added_nodes or self.added_edges
                    or self.removed_edges or self.removed_nodes)

    def __repr__(self) -> str:
        return (f"<NetworkUpdate +n{len(self.added_nodes)} "
                f"+e{len(self.added_edges)} -e{len(self.removed_edges)} "
                f"-n{len(self.removed_nodes)}>")


class NetworkMaintenanceConfig:
    """Tunables of the network maintainer."""

    __slots__ = ("drift_threshold", "tattoo", "max_scans", "prune",
                 "region_hops", "weights")

    def __init__(self, drift_threshold: float = 0.05,
                 tattoo: Optional[TattooConfig] = None,
                 max_scans: int = 3, prune: bool = True,
                 region_hops: int = 1,
                 weights: ScoreWeights = DEFAULT_WEIGHTS) -> None:
        if drift_threshold < 0:
            raise MaintenanceError("drift threshold must be >= 0")
        self.drift_threshold = drift_threshold
        self.tattoo = tattoo or TattooConfig()
        self.max_scans = max_scans
        self.prune = prune
        self.region_hops = region_hops
        self.weights = weights


class NetworkMaintenanceReport:
    """Outcome of applying one update burst."""

    __slots__ = ("update_index", "kind", "drift", "touched_edges",
                 "region_nodes", "swap_stats", "duration",
                 "score_before", "score_after")

    def __init__(self, update_index: int, kind: str, drift: float,
                 touched_edges: int, region_nodes: int,
                 swap_stats: Optional[SwapStats], duration: float,
                 score_before: float, score_after: float) -> None:
        self.update_index = update_index
        self.kind = kind
        self.drift = drift
        self.touched_edges = touched_edges
        self.region_nodes = region_nodes
        self.swap_stats = swap_stats
        self.duration = duration
        self.score_before = score_before
        self.score_after = score_after

    def __repr__(self) -> str:
        return (f"<NetworkMaintenanceReport #{self.update_index} "
                f"{self.kind} drift={self.drift:.4f} "
                f"score {self.score_before:.3f}->{self.score_after:.3f}>")


class NetworkMaintainer:
    """Maintains a TATTOO-selected pattern set on an evolving network.

    The maintainer owns its network copy; callers mutate it only via
    :meth:`apply_update`.
    """

    def __init__(self, network: Graph, budget: PatternBudget,
                 config: Optional[NetworkMaintenanceConfig] = None
                 ) -> None:
        if network.size() == 0:
            raise PipelineError(
                "network maintenance needs a network with edges")
        self.network = network.copy()
        self.budget = budget
        self.config = config or NetworkMaintenanceConfig()
        result = _run_tattoo(self.network, budget, self.config.tattoo)
        self.patterns: PatternSet = result.patterns
        self.last_score = result.selection.score
        self._support: Dict[Tuple[int, int], int] = edge_support(
            self.network)
        self._touched: Set[Tuple[int, int]] = set()
        self._changed_nodes: Set[int] = set()
        self._update_index = 0

    # ------------------------------------------------------------------
    # incremental support bookkeeping
    # ------------------------------------------------------------------
    def _touch(self, key: Tuple[int, int]) -> None:
        self._touched.add(key)
        self._changed_nodes.update(key)

    def _insert_edge(self, u: int, v: int, label: str) -> None:
        self.network.add_edge(u, v, label=label)
        key = edge_key(u, v)
        common = [w for w in self.network.neighbors(u)
                  if w != v and self.network.has_edge(w, v)]
        self._support[key] = len(common)
        self._touch(key)
        for w in common:
            for other in (edge_key(u, w), edge_key(v, w)):
                self._support[other] += 1
                self._touch(other)

    def _delete_edge(self, u: int, v: int) -> None:
        key = edge_key(u, v)
        common = [w for w in self.network.neighbors(u)
                  if w != v and self.network.has_edge(w, v)]
        for w in common:
            for other in (edge_key(u, w), edge_key(v, w)):
                self._support[other] -= 1
                self._touch(other)
        self.network.remove_edge(u, v)
        del self._support[key]
        self._touch(key)
        self._touched.discard(key)  # the edge itself no longer exists

    # ------------------------------------------------------------------
    def support_snapshot(self) -> Dict[Tuple[int, int], int]:
        """Copy of the incrementally-maintained support map."""
        return dict(self._support)

    def drift(self) -> float:
        """Fraction of current edges with changed support since the
        last pattern refresh."""
        if self.network.size() == 0:
            return 0.0
        return len(self._touched) / self.network.size()

    def _changed_region(self) -> Graph:
        """Induced subgraph on changed nodes plus ``region_hops``."""
        frontier = set(self._changed_nodes)
        frontier = {v for v in frontier if self.network.has_node(v)}
        region = set(frontier)
        for _ in range(self.config.region_hops):
            grown: Set[int] = set()
            for u in frontier:
                grown.update(self.network.neighbors(u))
            frontier = grown - region
            region |= grown
        return induced_subgraph(self.network, region, name="changed")

    # ------------------------------------------------------------------
    def apply_update(self, update: NetworkUpdate
                     ) -> NetworkMaintenanceReport:
        """Apply one update burst; maintain supports and patterns."""
        start = time.perf_counter()
        self._update_index += 1

        for node, label in update.added_nodes:
            if self.network.has_node(node):
                raise MaintenanceError(f"node {node} already exists")
            self.network.add_node(node, label=label)
        for u, v, label in update.added_edges:
            if not (self.network.has_node(u) and self.network.has_node(v)):
                raise MaintenanceError(
                    f"edge ({u}, {v}) references a missing node")
            if self.network.has_edge(u, v):
                raise MaintenanceError(f"edge ({u}, {v}) already exists")
            self._insert_edge(u, v, label)
        for u, v in update.removed_edges:
            if not self.network.has_edge(u, v):
                raise MaintenanceError(f"edge ({u}, {v}) does not exist")
            self._delete_edge(u, v)
        for node in update.removed_nodes:
            if not self.network.has_node(node):
                raise MaintenanceError(f"node {node} does not exist")
            for nbr in list(self.network.neighbors(node)):
                self._delete_edge(node, nbr)
            self.network.remove_node(node)
            self._changed_nodes.discard(node)

        drift = self.drift()
        touched = len(self._touched)
        had_removals = bool(update.removed_edges or update.removed_nodes)

        if drift < self.config.drift_threshold and not had_removals:
            # fast path: additions cannot invalidate existing patterns,
            # so a sub-threshold, addition-only burst needs no pattern
            # work at all — just the O(touched) support bookkeeping
            duration = time.perf_counter() - start
            return NetworkMaintenanceReport(
                self._update_index, "minor", drift, touched, 0, None,
                duration, self.last_score, self.last_score)

        index = CoverageIndex([self.network],
                              max_embeddings=self.config.tattoo
                              .max_embeddings,
                              size_utility=True)
        scorer = SetScorer(index, weights=self.config.weights)
        # drop patterns that no longer occur anywhere in the network
        surviving = [p for p in self.patterns
                     if index.covered_graphs(p)]
        vanished = len(self.patterns) - len(surviving)
        score_before = scorer.score(list(self.patterns))

        if drift < self.config.drift_threshold and vanished == 0:
            duration = time.perf_counter() - start
            return NetworkMaintenanceReport(
                self._update_index, "minor", drift, touched, 0, None,
                duration, score_before, score_before)

        region = self._changed_region()
        candidates: List[Pattern] = []
        if region.size() > 0:
            by_class = extract_candidates(region, self.budget,
                                          self.config.tattoo)
            seen: Set[str] = set()
            for patterns in by_class.values():
                for pattern in patterns:
                    if pattern.code not in seen:
                        seen.add(pattern.code)
                        candidates.append(pattern)
        swapped, stats = multi_scan_swap(
            surviving, candidates, scorer,
            max_scans=self.config.max_scans, prune=self.config.prune)
        patterns = PatternSet(swapped)
        if len(patterns) < self.budget.max_patterns and candidates:
            selection = greedy_select(candidates, self.budget, scorer,
                                      seed_patterns=list(patterns))
            patterns = selection.patterns
        self.patterns = patterns
        score_after = scorer.score(list(patterns))
        self.last_score = score_after
        self._touched.clear()
        self._changed_nodes.clear()
        duration = time.perf_counter() - start
        return NetworkMaintenanceReport(
            self._update_index, "major", drift, touched,
            region.order(), stats, duration, score_before, score_after)
