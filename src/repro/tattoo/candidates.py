"""Topology-driven candidate extraction for TATTOO.

Real query logs contain triangle-like substructures (triangles,
cliques, petals, flowers) and non-triangle-like ones (chains, stars,
trees, large cycles).  TATTOO therefore extracts candidates of the
triangle-like classes from the truss-infested region G_T and the rest
from the truss-oblivious region G_O.  Every candidate is a concrete
subgraph of the network (labels included), so each is guaranteed to
have at least one embedding — coverage never needs validation.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.graph.graph import Graph, edge_key
from repro.graph.operations import (
    bfs_order,
    edge_subgraph,
    induced_subgraph,
)
from repro.patterns.base import Pattern, PatternBudget
from repro.patterns.topologies import TopologyClass
from repro.perf.cache import cached_canonical_code


def _dedup(candidates: Iterable[Tuple[Graph, str]],
           budget: PatternBudget) -> List[Pattern]:
    """Normalise, budget-filter, and canonically deduplicate.

    Identically re-sampled subgraphs (frequent for hubs and dense
    cliques) hit the fingerprint-keyed canonical-code cache instead
    of re-running the backtracking search.
    """
    seen: Set[str] = set()
    out: List[Pattern] = []
    for graph, source in candidates:
        if not budget.admits(graph):
            continue
        code = cached_canonical_code(graph)
        if code in seen:
            continue
        seen.add(code)
        out.append(Pattern(graph.normalized(), source=source))
    return out


# ----------------------------------------------------------------------
# truss-oblivious extractors (chains, stars, trees, cycles)
# ----------------------------------------------------------------------


def extract_chains(region: Graph, budget: PatternBudget,
                   rng: random.Random, samples: int = 30) -> List[Pattern]:
    """Random non-backtracking walks cut to budget-sized chains."""
    nodes = sorted(region.nodes())
    if not nodes:
        return []
    raw: List[Tuple[Graph, str]] = []
    for _ in range(samples):
        length = rng.randint(budget.min_size, budget.max_size)
        start = rng.choice(nodes)
        path = [start]
        current = start
        previous = None
        while len(path) < length:
            nbrs = [v for v in region.neighbors(current)
                    if v != previous and v not in path]
            if not nbrs:
                break
            previous = current
            current = rng.choice(nbrs)
            path.append(current)
        if len(path) >= budget.min_size:
            edges = [(path[i], path[i + 1]) for i in range(len(path) - 1)]
            raw.append((edge_subgraph(region, edges), "tattoo:chain"))
    return _dedup(raw, budget)


def extract_stars(region: Graph, budget: PatternBudget,
                  rng: random.Random, hubs: int = 15) -> List[Pattern]:
    """Highest-degree nodes with a budget-sized sample of spokes."""
    ranked = sorted(region.nodes(), key=lambda v: -region.degree(v))
    raw: List[Tuple[Graph, str]] = []
    for hub in ranked[:hubs]:
        nbrs = sorted(region.neighbors(hub))
        if len(nbrs) < budget.min_size - 1:
            continue
        leaves = rng.sample(nbrs, min(len(nbrs), budget.max_size - 1))
        edges = [(hub, leaf) for leaf in leaves]
        raw.append((edge_subgraph(region, edges), "tattoo:star"))
    return _dedup(raw, budget)


def extract_trees(region: Graph, budget: PatternBudget,
                  rng: random.Random, samples: int = 15) -> List[Pattern]:
    """BFS trees truncated to the budget size."""
    nodes = sorted(region.nodes())
    if not nodes:
        return []
    raw: List[Tuple[Graph, str]] = []
    for _ in range(samples):
        root = rng.choice(nodes)
        order = bfs_order(region, root)[:rng.randint(budget.min_size,
                                                     budget.max_size)]
        if len(order) < budget.min_size:
            continue
        included = set(order)
        edges = []
        seen = {root}
        for v in order[1:]:
            parent = next(u for u in order
                          if u in seen and region.has_edge(u, v))
            edges.append((parent, v))
            seen.add(v)
        raw.append((edge_subgraph(region, edges), "tattoo:tree"))
    return _dedup(raw, budget)


def extract_cycles(region: Graph, budget: PatternBudget,
                   rng: random.Random, samples: int = 20) -> List[Pattern]:
    """Fundamental cycles of random BFS trees, within the size budget."""
    nodes = sorted(region.nodes())
    if not nodes:
        return []
    raw: List[Tuple[Graph, str]] = []
    for _ in range(samples):
        root = rng.choice(nodes)
        parent: Dict[int, Optional[int]] = {root: None}
        order = [root]
        queue = [root]
        while queue:
            u = queue.pop(0)
            for v in region.neighbors(u):
                if v not in parent:
                    parent[v] = u
                    order.append(v)
                    queue.append(v)
        tree_edges = {edge_key(u, p) for u, p in parent.items()
                      if p is not None}
        non_tree = [e for e in
                    (edge_key(u, v) for u, v in region.edges()
                     if u in parent and v in parent)
                    if e not in tree_edges]
        rng.shuffle(non_tree)
        for u, v in non_tree[:5]:
            # tree path u..v + the chord = a cycle
            ancestors_u = []
            x: Optional[int] = u
            while x is not None:
                ancestors_u.append(x)
                x = parent[x]
            seen_u = set(ancestors_u)
            path_v = []
            y: Optional[int] = v
            while y is not None and y not in seen_u:
                path_v.append(y)
                y = parent[y]
            if y is None:
                continue
            lca = y
            cycle_nodes = ancestors_u[:ancestors_u.index(lca) + 1] + \
                list(reversed(path_v))
            if not (budget.min_size <= len(cycle_nodes)
                    <= budget.max_size):
                continue
            edges = [(cycle_nodes[i], cycle_nodes[i + 1])
                     for i in range(len(cycle_nodes) - 1)]
            edges.append((cycle_nodes[-1], cycle_nodes[0]))
            raw.append((edge_subgraph(region, edges), "tattoo:cycle"))
    return _dedup(raw, budget)


# ----------------------------------------------------------------------
# truss-infested extractors (cliques, petals, flowers)
# ----------------------------------------------------------------------


def extract_cliques(region: Graph, budget: PatternBudget,
                    rng: random.Random, seeds: int = 20) -> List[Pattern]:
    """Greedy clique growth from random edges of the dense region."""
    edges = sorted(region.edges())
    if not edges:
        return []
    raw: List[Tuple[Graph, str]] = []
    for _ in range(seeds):
        u, v = rng.choice(edges)
        members = [u, v]
        candidates = [w for w in region.neighbors(u)
                      if w != v and region.has_edge(w, v)]
        rng.shuffle(candidates)
        for w in candidates:
            if len(members) >= budget.max_size:
                break
            if all(region.has_edge(w, x) for x in members):
                members.append(w)
        if len(members) >= max(budget.min_size, 3):
            raw.append((induced_subgraph(region, members),
                        "tattoo:clique"))
    return _dedup(raw, budget)


def extract_petals(region: Graph, budget: PatternBudget,
                   rng: random.Random, seeds: int = 25) -> List[Pattern]:
    """Books/petals: an anchor edge plus common-neighbor 2-paths."""
    edges = sorted(region.edges())
    if not edges:
        return []
    raw: List[Tuple[Graph, str]] = []
    for _ in range(seeds):
        u, v = rng.choice(edges)
        common = [w for w in region.neighbors(u) if region.has_edge(w, v)]
        if not common:
            continue
        rng.shuffle(common)
        mids = common[:budget.max_size - 2]
        if len(mids) + 2 < budget.min_size:
            continue
        subset_edges = [(u, v)]
        for w in mids:
            subset_edges.extend([(u, w), (w, v)])
        raw.append((edge_subgraph(region, subset_edges), "tattoo:petal"))
    return _dedup(raw, budget)


def extract_flowers(region: Graph, budget: PatternBudget,
                    rng: random.Random, hubs: int = 15) -> List[Pattern]:
    """Triangle petals sharing one hub (node-disjoint otherwise)."""
    ranked = sorted(region.nodes(), key=lambda v: -region.degree(v))
    raw: List[Tuple[Graph, str]] = []
    for hub in ranked[:hubs]:
        nbrs = sorted(region.neighbors(hub))
        triangles_at_hub: List[Tuple[int, int]] = []
        for i, a in enumerate(nbrs):
            for b in nbrs[i + 1:]:
                if region.has_edge(a, b):
                    triangles_at_hub.append((a, b))
        rng.shuffle(triangles_at_hub)
        used: Set[int] = set()
        petals: List[Tuple[int, int]] = []
        for a, b in triangles_at_hub:
            if a in used or b in used:
                continue
            if 1 + 2 * (len(petals) + 1) > budget.max_size:
                break
            petals.append((a, b))
            used.update((a, b))
        if len(petals) >= 2 and 1 + 2 * len(petals) >= budget.min_size:
            subset_edges = []
            for a, b in petals:
                subset_edges.extend([(hub, a), (hub, b), (a, b)])
            raw.append((edge_subgraph(region, subset_edges),
                        "tattoo:flower"))
    return _dedup(raw, budget)


#: extractor registry: topology class -> (extractor, region kind)
EXTRACTORS = {
    TopologyClass.CHAIN: (extract_chains, "oblivious"),
    TopologyClass.STAR: (extract_stars, "oblivious"),
    TopologyClass.TREE: (extract_trees, "oblivious"),
    TopologyClass.CYCLE: (extract_cycles, "oblivious"),
    TopologyClass.CLIQUE: (extract_cliques, "infested"),
    TopologyClass.PETAL: (extract_petals, "infested"),
    TopologyClass.FLOWER: (extract_flowers, "infested"),
}
