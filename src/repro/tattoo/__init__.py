"""TATTOO: canned-pattern selection for large networks."""

from repro.tattoo.candidates import (
    EXTRACTORS,
    extract_chains,
    extract_cliques,
    extract_cycles,
    extract_flowers,
    extract_petals,
    extract_stars,
    extract_trees,
)
from repro.tattoo.distributed import (
    DistributedResult,
    WorkerReport,
    partition_network,
    partition_with_halo,
    select_patterns_distributed,
)
from repro.tattoo.maintenance import (
    NetworkMaintainer,
    NetworkMaintenanceConfig,
    NetworkMaintenanceReport,
    NetworkUpdate,
)
from repro.tattoo.pipeline import (
    TattooConfig,
    TattooResult,
    extract_candidates,
    select_network_patterns,
)

__all__ = [
    "EXTRACTORS",
    "DistributedResult",
    "WorkerReport",
    "partition_network",
    "partition_with_halo",
    "select_patterns_distributed",
    "NetworkMaintainer",
    "NetworkMaintenanceConfig",
    "NetworkMaintenanceReport",
    "NetworkUpdate",
    "extract_chains",
    "extract_cliques",
    "extract_cycles",
    "extract_flowers",
    "extract_petals",
    "extract_stars",
    "extract_trees",
    "TattooConfig",
    "TattooResult",
    "extract_candidates",
    "select_network_patterns",
]
