"""The TATTOO pipeline (Yuan et al., PVLDB 2021).

Data-driven canned-pattern selection for a single large network:

1. **Decompose** the network into a truss-infested region G_T and a
   truss-oblivious region G_O via k-truss decomposition.
2. **Extract** candidates per query-log topology class: triangle-like
   classes (cliques, petals, flowers) from G_T, the rest (chains,
   stars, trees, cycles) from G_O.
3. **Select** greedily under the budget, maximising the pattern-set
   score (coverage + diversity - cognitive load); the greedy sweep on
   this regularised submodular objective carries TATTOO's
   1/e-approximation guarantee.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence

from repro.errors import PipelineError
from repro.graph.graph import Graph
from repro.patterns.base import Pattern, PatternBudget, PatternSet
from repro.patterns.index import CoverageIndex
from repro.patterns.scoring import DEFAULT_WEIGHTS, ScoreWeights
from repro.patterns.selection import SelectionResult, SetScorer, greedy_select
from repro.patterns.topologies import TopologyClass
from repro.tattoo.candidates import EXTRACTORS
from repro.truss.decomposition import DEFAULT_TRUSS_THRESHOLD, split_by_truss


class TattooConfig:
    """Tunables of the TATTOO pipeline."""

    __slots__ = ("truss_threshold", "seed", "weights", "samples_scale",
                 "max_embeddings", "classes")

    def __init__(self, truss_threshold: int = DEFAULT_TRUSS_THRESHOLD,
                 seed: int = 0,
                 weights: ScoreWeights = DEFAULT_WEIGHTS,
                 samples_scale: float = 1.0,
                 max_embeddings: int = 30,
                 classes: Optional[Sequence[TopologyClass]] = None) -> None:
        self.truss_threshold = truss_threshold
        self.seed = seed
        self.weights = weights
        self.samples_scale = samples_scale
        self.max_embeddings = max_embeddings
        self.classes = tuple(classes) if classes else tuple(EXTRACTORS)


class TattooResult:
    """Pipeline outputs: regions, per-class candidates, selection."""

    __slots__ = ("patterns", "truss_region", "oblivious_region",
                 "candidates_by_class", "selection", "timings")

    def __init__(self, patterns: PatternSet, truss_region: Graph,
                 oblivious_region: Graph,
                 candidates_by_class: Dict[TopologyClass, List[Pattern]],
                 selection: SelectionResult,
                 timings: Dict[str, float]) -> None:
        self.patterns = patterns
        self.truss_region = truss_region
        self.oblivious_region = oblivious_region
        self.candidates_by_class = candidates_by_class
        self.selection = selection
        self.timings = timings

    def all_candidates(self) -> List[Pattern]:
        out: List[Pattern] = []
        seen: set[str] = set()
        for patterns in self.candidates_by_class.values():
            for pattern in patterns:
                if pattern.code not in seen:
                    seen.add(pattern.code)
                    out.append(pattern)
        return out

    def __repr__(self) -> str:
        total = sum(len(v) for v in self.candidates_by_class.values())
        return (f"<TattooResult k={len(self.patterns)} "
                f"candidates={total}>")


def extract_candidates(network: Graph, budget: PatternBudget,
                       config: TattooConfig
                       ) -> Dict[TopologyClass, List[Pattern]]:
    """Steps 1+2: truss split and per-class candidate extraction."""
    g_t, g_o = split_by_truss(network, threshold=config.truss_threshold)
    rng = random.Random(config.seed)
    by_class: Dict[TopologyClass, List[Pattern]] = {}
    for cls in config.classes:
        extractor, region_kind = EXTRACTORS[cls]
        region = g_t if region_kind == "infested" else g_o
        if region.size() == 0:
            by_class[cls] = []
            continue
        scale = config.samples_scale
        kwargs = {}
        if scale != 1.0:
            # every extractor's last kwarg is its sample count
            import inspect
            sig = inspect.signature(extractor)
            last = list(sig.parameters)[-1]
            default = sig.parameters[last].default
            kwargs[last] = max(1, int(default * scale))
        by_class[cls] = extractor(region, budget, rng, **kwargs)
    return by_class


def select_network_patterns(network: Graph, budget: PatternBudget,
                            config: Optional[TattooConfig] = None
                            ) -> TattooResult:
    """Run the full TATTOO pipeline on one network."""
    if network.size() == 0:
        raise PipelineError("TATTOO needs a network with edges")
    config = config or TattooConfig()
    timings: Dict[str, float] = {}

    start = time.perf_counter()
    g_t, g_o = split_by_truss(network, threshold=config.truss_threshold)
    timings["decompose"] = time.perf_counter() - start

    start = time.perf_counter()
    by_class = extract_candidates(network, budget, config)
    timings["extract"] = time.perf_counter() - start

    start = time.perf_counter()
    candidates: List[Pattern] = []
    seen: set[str] = set()
    for cls in config.classes:
        for pattern in by_class.get(cls, []):
            if pattern.code not in seen:
                seen.add(pattern.code)
                candidates.append(pattern)
    index = CoverageIndex([network], max_embeddings=config.max_embeddings,
                          size_utility=True)
    scorer = SetScorer(index, weights=config.weights)
    selection = greedy_select(candidates, budget, scorer)
    timings["select"] = time.perf_counter() - start

    return TattooResult(selection.patterns, g_t, g_o, by_class,
                        selection, timings)
