"""The TATTOO pipeline (Yuan et al., PVLDB 2021).

Data-driven canned-pattern selection for a single large network:

1. **Decompose** the network into a truss-infested region G_T and a
   truss-oblivious region G_O via k-truss decomposition.
2. **Extract** candidates per query-log topology class: triangle-like
   classes (cliques, petals, flowers) from G_T, the rest (chains,
   stars, trees, cycles) from G_O.
3. **Select** greedily under the budget, maximising the pattern-set
   score (coverage + diversity - cognitive load); the greedy sweep on
   this regularised submodular objective carries TATTOO's
   1/e-approximation guarantee.
"""

from __future__ import annotations

import random
import time
import warnings
from typing import Dict, List, Optional, Sequence

from repro.errors import PipelineError
from repro.graph.graph import Graph
from repro.obs import capture, span
from repro.patterns.base import Pattern, PatternBudget, PatternSet
from repro.patterns.index import CoverageIndex
from repro.patterns.scoring import DEFAULT_WEIGHTS, ScoreWeights
from repro.patterns.selection import SelectionResult, SetScorer, greedy_select
from repro.patterns.topologies import TopologyClass
from repro.perf.cache import get_match_cache
from repro.perf.executor import ItemFailure, derive_seed, \
    failure_policy, pmap, resolve_workers
from repro.resilience.deadline import CompletionReport, Deadline
from repro.tattoo.candidates import EXTRACTORS
from repro.truss.decomposition import DEFAULT_TRUSS_THRESHOLD, split_by_truss


class TattooConfig:
    """Tunables of the TATTOO pipeline.

    ``workers`` fans the per-topology-class extraction out over
    :func:`repro.perf.pmap` processes; each class extracts with a seed
    split off ``seed``, so results are identical at every worker
    count.  ``use_cache`` toggles the shared VF2 match cache used by
    the greedy selection's coverage index — extraction and coverage
    pmap calls then run in cache-merge mode, so worker cache hits
    fold back into the coordinator's cache deterministically;
    ``trace`` captures a
    :mod:`repro.obs` trace for this run even when ``REPRO_TRACE`` is
    unset.  ``deadline_s`` bounds the run's wall clock (stages stop
    early and the result degrades instead of raising);
    ``max_retries`` is the per-item retry budget failing pmap work
    items get before being skipped.
    """

    __slots__ = ("truss_threshold", "seed", "weights", "samples_scale",
                 "max_embeddings", "classes", "workers", "use_cache",
                 "trace", "deadline_s", "max_retries")

    def __init__(self, truss_threshold: int = DEFAULT_TRUSS_THRESHOLD,
                 seed: int = 0,
                 weights: ScoreWeights = DEFAULT_WEIGHTS,
                 samples_scale: float = 1.0,
                 max_embeddings: int = 30,
                 classes: Optional[Sequence[TopologyClass]] = None,
                 workers: Optional[int] = None,
                 use_cache: bool = True,
                 trace: bool = False,
                 deadline_s: Optional[float] = None,
                 max_retries: int = 0) -> None:
        self.truss_threshold = truss_threshold
        self.seed = seed
        self.weights = weights
        self.samples_scale = samples_scale
        self.max_embeddings = max_embeddings
        self.classes = tuple(classes) if classes else tuple(EXTRACTORS)
        self.workers = workers
        self.use_cache = use_cache
        self.trace = trace
        self.deadline_s = deadline_s
        self.max_retries = max_retries

    @classmethod
    def from_pipeline(cls, pipeline) -> "TattooConfig":
        """Translate a :class:`repro.core.pipeline.PipelineConfig`:
        shared fields map 1:1 and TATTOO-specific knobs come from
        ``pipeline.options`` (unknown option names raise)."""
        kwargs = dict(pipeline.options)
        unknown = sorted(set(kwargs) - set(cls.__slots__))
        if unknown:
            raise PipelineError(
                "unknown TATTOO option(s): " + ", ".join(unknown))
        for name in ("seed", "workers", "use_cache", "weights",
                     "max_embeddings", "trace", "deadline_s",
                     "max_retries"):
            kwargs.setdefault(name, getattr(pipeline, name))
        return cls(**kwargs)


class TattooResult:
    """Pipeline outputs: regions, per-class candidates, selection.

    Satisfies :class:`repro.core.pipeline.PipelineResult`:
    ``.patterns``, ``.stats``, and ``.trace`` (the run's span record,
    ``None`` unless tracing was on).
    """

    __slots__ = ("patterns", "truss_region", "oblivious_region",
                 "candidates_by_class", "selection", "timings", "trace",
                 "completion")

    def __init__(self, patterns: PatternSet, truss_region: Graph,
                 oblivious_region: Graph,
                 candidates_by_class: Dict[TopologyClass, List[Pattern]],
                 selection: SelectionResult,
                 timings: Dict[str, float],
                 trace: Optional[Dict[str, object]] = None,
                 completion: Optional[CompletionReport] = None) -> None:
        self.patterns = patterns
        self.truss_region = truss_region
        self.oblivious_region = oblivious_region
        self.candidates_by_class = candidates_by_class
        self.selection = selection
        self.timings = timings
        self.trace = trace
        self.completion = completion or CompletionReport()

    @property
    def degraded(self) -> bool:
        """True when any stage stopped short of its full work."""
        return self.completion.degraded

    @property
    def stats(self) -> Dict[str, object]:
        """Flat run statistics in the shared PipelineResult shape."""
        return {
            "pipeline": "tattoo",
            "patterns": len(self.patterns),
            "classes": len(self.candidates_by_class),
            "candidates": sum(len(v) for v
                              in self.candidates_by_class.values()),
            "considered": self.selection.considered,
            "score": self.selection.score,
            "timings": dict(self.timings),
            "degraded": self.degraded,
            "completion": self.completion.as_dict(),
        }

    def all_candidates(self) -> List[Pattern]:
        out: List[Pattern] = []
        seen: set[str] = set()
        for patterns in self.candidates_by_class.values():
            for pattern in patterns:
                if pattern.code not in seen:
                    seen.add(pattern.code)
                    out.append(pattern)
        return out

    def __repr__(self) -> str:
        total = sum(len(v) for v in self.candidates_by_class.values())
        return (f"<TattooResult k={len(self.patterns)} "
                f"candidates={total}>")


def _sample_kwargs(extractor, scale: float) -> Dict[str, int]:
    """Scaled sample-count kwarg for one extractor (empty at 1.0)."""
    if scale == 1.0:
        return {}
    # every extractor's last kwarg is its sample count
    import inspect
    sig = inspect.signature(extractor)
    last = list(sig.parameters)[-1]
    default = sig.parameters[last].default
    return {last: max(1, int(default * scale))}


def _extract_task(task) -> List[Pattern]:
    """One topology class's extraction (module-level: pool-runnable)."""
    cls, region, budget, kwargs, seed = task
    with span("tattoo.extract_class", topology=str(cls.value)) as work:
        extractor, _ = EXTRACTORS[cls]
        patterns = extractor(region, budget, random.Random(seed),
                             **kwargs)
        for pattern in patterns:
            pattern.code  # canonical coding happens in the worker
        work.add("patterns", len(patterns))
        return patterns


def extract_candidates(network: Graph, budget: PatternBudget,
                       config: TattooConfig,
                       deadline: Optional[Deadline] = None,
                       report: Optional[CompletionReport] = None
                       ) -> Dict[TopologyClass, List[Pattern]]:
    """Steps 1+2: truss split and per-class candidate extraction.

    Classes are independent work items: each extracts from its region
    with its own split seed under :func:`repro.perf.pmap`, and the
    per-class result map is assembled in ``config.classes`` order —
    identical output at every worker count.

    Resilience: a failing class task climbs pmap's retry ladder and
    is then skipped — its class simply contributes no candidates,
    which the completion report records.  Under a deadline classes
    are dispatched in worker-sized waves (first wave always runs), so
    a tight budget degrades to fewer topology classes, never zero.
    """
    deadline = deadline or Deadline(None)
    report = report if report is not None else CompletionReport()
    with span("tattoo.extract", classes=len(config.classes)) as stage:
        g_t, g_o = split_by_truss(network,
                                  threshold=config.truss_threshold)
        by_class: Dict[TopologyClass, List[Pattern]] = {}
        tasks = []
        task_classes: List[TopologyClass] = []
        for position, cls in enumerate(config.classes):
            extractor, region_kind = EXTRACTORS[cls]
            region = g_t if region_kind == "infested" else g_o
            if region.size() == 0:
                by_class[cls] = []
                continue
            tasks.append((cls, region, budget,
                          _sample_kwargs(extractor,
                                         config.samples_scale),
                          derive_seed(config.seed, position)))
            task_classes.append(cls)
        policy = failure_policy(config.max_retries, config.deadline_s)
        wave = (len(tasks) if deadline.seconds is None
                else max(1, resolve_workers(config.workers)))
        cache_merge = get_match_cache() if config.use_cache else None
        done = failed = 0
        for start in range(0, len(tasks), wave):
            if start and deadline.check("tattoo.extract"):
                break
            results = pmap(_extract_task, tasks[start:start + wave],
                           workers=config.workers,
                           max_retries=config.max_retries,
                           on_item_failure=policy,
                           retry_seed=config.seed,
                           site="tattoo.extract",
                           cache_merge=cache_merge)
            for cls, patterns in zip(task_classes[start:start + wave],
                                     results):
                if isinstance(patterns, ItemFailure):
                    by_class[cls] = []
                    failed += 1
                    continue
                by_class[cls] = patterns
                done += 1
        for cls in config.classes:
            by_class.setdefault(cls, [])
        stage.add("candidates",
                  sum(len(v) for v in by_class.values()))
        if failed:
            stage.add("failed_classes", failed)
        report.record("extract", done, len(tasks),
                      note=f"{failed} class task(s) skipped"
                      if failed else "")
        return by_class


def _run_tattoo(network: Graph, budget: PatternBudget,
                config: TattooConfig) -> TattooResult:
    """The actual pipeline, shared by the new-style entry points and
    the deprecated keyword signature."""
    if network.size() == 0:
        raise PipelineError("TATTOO needs a network with edges")
    timings: Dict[str, float] = {}
    deadline = Deadline.start(config.deadline_s)
    report = CompletionReport()

    with capture("tattoo.pipeline", force=config.trace,
                 nodes=network.order(), edges=network.size()) as run:
        start = time.perf_counter()
        with span("tattoo.decompose",
                  threshold=config.truss_threshold) as stage:
            g_t, g_o = split_by_truss(
                network, threshold=config.truss_threshold)
            stage.add("truss_edges", g_t.size())
            stage.add("oblivious_edges", g_o.size())
            report.record("decompose", 1, 1)
        timings["decompose"] = time.perf_counter() - start

        start = time.perf_counter()
        by_class = extract_candidates(network, budget, config,
                                      deadline, report)
        timings["extract"] = time.perf_counter() - start

        start = time.perf_counter()
        with span("tattoo.select") as stage:
            candidates: List[Pattern] = []
            seen: set[str] = set()
            for cls in config.classes:
                for pattern in by_class.get(cls, []):
                    if pattern.code not in seen:
                        seen.add(pattern.code)
                        candidates.append(pattern)
            stage.add("candidates", len(candidates))
            index = CoverageIndex(
                [network], max_embeddings=config.max_embeddings,
                size_utility=True, use_cache=config.use_cache)
            scorer = SetScorer(index, weights=config.weights)
            selection = greedy_select(candidates, budget, scorer,
                                      deadline=deadline,
                                      workers=config.workers)
            stage.add("evaluations", selection.evaluations)
            report.record("select", len(selection.patterns),
                          budget.max_patterns,
                          complete=selection.complete
                          and not selection.faults,
                          note=f"{selection.faults} evaluation "
                          "fault(s)" if selection.faults else "")
        timings["select"] = time.perf_counter() - start
        if report.degraded:
            run.add("degraded", "true")

    return TattooResult(selection.patterns, g_t, g_o, by_class,
                        selection, timings, trace=run.record,
                        completion=report)


def select_network_patterns(network: Graph, budget=None,
                            config: Optional[TattooConfig] = None
                            ) -> TattooResult:
    """Run the full TATTOO pipeline on one network.

    New-style calls pass a single :class:`repro.core.pipeline.
    PipelineConfig` in place of ``budget`` (or use :func:`repro.core.
    pipeline.run_tattoo`).  The legacy ``(network, budget,
    TattooConfig)`` signature still works but emits a
    ``DeprecationWarning``.
    """
    from repro.core.pipeline import PipelineConfig

    if isinstance(budget, PipelineConfig):
        if config is not None:
            raise PipelineError(
                "pass TATTOO options inside PipelineConfig.options, "
                "not as a separate TattooConfig")
        return _run_tattoo(network, budget.require_budget(),
                           TattooConfig.from_pipeline(budget))
    warnings.warn(
        "select_network_patterns(network, budget, TattooConfig) is "
        "deprecated; pass a repro.core.pipeline.PipelineConfig instead "
        "(or call repro.core.pipeline.run_tattoo)",
        DeprecationWarning, stacklevel=2)
    if budget is None:
        raise PipelineError("TATTOO needs a PatternBudget")
    return _run_tattoo(network, budget, config or TattooConfig())
