"""Pattern-based graph summarization (paper §2.5, "Beyond VQIs").

The tutorial suggests that canned patterns — high-coverage, diverse,
low-cognitive-load by construction — make good building blocks for
*visualization-friendly* graph summaries, in contrast to classical
topological summaries that ignore readability.

:func:`summarize_with_patterns` greedily covers a graph with
edge-disjoint instances of the given patterns (largest first),
collapses every instance into a supernode labeled by its pattern's
topology, and reports compression plus the cognitive-load reduction
relative to the input.  :func:`label_grouping_summary` provides the
classical group-by-label baseline for comparison.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.graph.graph import Graph, edge_key
from repro.patterns.base import Pattern
from repro.patterns.scoring import cognitive_load
from repro.patterns.topologies import classify_topology


class PatternInstance:
    """One collapsed occurrence of a pattern in the summarized graph."""

    __slots__ = ("pattern", "nodes", "edges")

    def __init__(self, pattern: Pattern, nodes: Set[int],
                 edges: Set[Tuple[int, int]]) -> None:
        self.pattern = pattern
        self.nodes = nodes
        self.edges = edges

    def __repr__(self) -> str:
        return (f"<PatternInstance {classify_topology(self.pattern.graph).value} "
                f"|V|={len(self.nodes)}>")


class SummaryResult:
    """A pattern-based summary and its quality statistics."""

    __slots__ = ("summary", "instances", "original_order",
                 "original_size", "uncovered_edges")

    def __init__(self, summary: Graph, instances: List[PatternInstance],
                 original_order: int, original_size: int,
                 uncovered_edges: int) -> None:
        self.summary = summary
        self.instances = instances
        self.original_order = original_order
        self.original_size = original_size
        self.uncovered_edges = uncovered_edges

    def node_compression(self) -> float:
        """Supernodes per original node (lower = more compression)."""
        if self.original_order == 0:
            return 1.0
        return self.summary.order() / self.original_order

    def edge_compression(self) -> float:
        if self.original_size == 0:
            return 1.0
        return self.summary.size() / self.original_size

    def coverage(self) -> float:
        """Fraction of original edges inside collapsed instances."""
        if self.original_size == 0:
            return 0.0
        return 1.0 - self.uncovered_edges / self.original_size

    def load_reduction(self, original: Graph) -> float:
        """Cognitive-load drop from original to summary (>= 0 good)."""
        return cognitive_load(original) - cognitive_load(self.summary)

    def __repr__(self) -> str:
        return (f"<SummaryResult n={self.summary.order()} "
                f"m={self.summary.size()} "
                f"instances={len(self.instances)} "
                f"coverage={self.coverage():.2f}>")


def _edge_disjoint_instances(graph: Graph, patterns: Sequence[Pattern],
                             used_edges: Set[Tuple[int, int]],
                             used_nodes: Set[int],
                             max_instances: int,
                             embeddings_per_pattern: int
                             ) -> List[PatternInstance]:
    """Greedy node-disjoint instance collection.

    After each accepted instance the search continues on the graph
    *minus* the used nodes, so automorphic re-embeddings of already
    collapsed regions never exhaust the search budget.
    """
    from repro.graph.operations import induced_subgraph
    from repro.matching.isomorphism import find_embedding

    instances: List[PatternInstance] = []
    ordered = sorted(patterns, key=lambda p: (-p.size(), -p.order()))
    for pattern in ordered:
        if len(instances) >= max_instances:
            break
        found_this_pattern = 0
        while (len(instances) < max_instances
               and found_this_pattern < embeddings_per_pattern):
            remaining_nodes = [v for v in graph.nodes()
                               if v not in used_nodes]
            if len(remaining_nodes) < pattern.order():
                break
            remaining = induced_subgraph(graph, remaining_nodes)
            mapping = find_embedding(pattern.graph, remaining)
            if mapping is None:
                break
            found_this_pattern += 1
            image_nodes = set(mapping.values())
            image_edges = {edge_key(mapping[u], mapping[v])
                           for u, v in pattern.graph.edges()}
            instances.append(PatternInstance(pattern, image_nodes,
                                             image_edges))
            used_nodes |= image_nodes
            used_edges |= image_edges
    return instances


def summarize_with_patterns(graph: Graph, patterns: Sequence[Pattern],
                            max_instances: int = 50,
                            embeddings_per_pattern: int = 200
                            ) -> SummaryResult:
    """Collapse edge-disjoint pattern instances into supernodes.

    Supernodes carry the instance's topology class as their label and
    the member count in their ``members`` attribute; nodes outside
    every instance survive as singletons with their original labels.
    Superedges aggregate the original inter-group edges, labeled with
    the multiplicity.
    """
    used_edges: Set[Tuple[int, int]] = set()
    used_nodes: Set[int] = set()
    instances = _edge_disjoint_instances(
        graph, patterns, used_edges, used_nodes, max_instances,
        embeddings_per_pattern)

    # map original node -> summary node
    summary = Graph(name=f"{graph.name}:summary")
    node_map: Dict[int, int] = {}
    next_id = 0
    for instance in instances:
        label = classify_topology(instance.pattern.graph).value
        supernode = summary.add_node(next_id, label=label,
                                     members=len(instance.nodes))
        next_id += 1
        for node in instance.nodes:
            node_map[node] = supernode
    for node in graph.nodes():
        if node not in node_map:
            singleton = summary.add_node(next_id,
                                         label=graph.node_label(node),
                                         members=1)
            next_id += 1
            node_map[node] = singleton

    # aggregate superedges
    multiplicity: Dict[Tuple[int, int], int] = {}
    uncovered = 0
    for u, v in graph.edges():
        if edge_key(u, v) in used_edges:
            continue  # collapsed inside an instance
        uncovered += 1
        a, b = node_map[u], node_map[v]
        if a == b:
            continue  # both endpoints folded into the same supernode
        key = edge_key(a, b)
        multiplicity[key] = multiplicity.get(key, 0) + 1
    for (a, b), count in multiplicity.items():
        summary.add_edge(a, b, label=str(count), multiplicity=count)

    return SummaryResult(summary, instances, graph.order(),
                         graph.size(), uncovered)


def label_grouping_summary(graph: Graph) -> SummaryResult:
    """Classical baseline: one supernode per node label.

    Mirrors attribute-based summarization; typically compresses hard
    but destroys topology, which is why the tutorial argues
    pattern-based summaries are more palatable to end users.
    """
    summary = Graph(name=f"{graph.name}:label-summary")
    groups: Dict[str, int] = {}
    node_map: Dict[int, int] = {}
    next_id = 0
    counts: Dict[str, int] = {}
    for node in graph.nodes():
        label = graph.node_label(node)
        counts[label] = counts.get(label, 0) + 1
        if label not in groups:
            groups[label] = next_id
            summary.add_node(next_id, label=label)
            next_id += 1
        node_map[node] = groups[label]
    for label, supernode in groups.items():
        summary.node_attrs(supernode)["members"] = counts[label]
    multiplicity: Dict[Tuple[int, int], int] = {}
    for u, v in graph.edges():
        a, b = node_map[u], node_map[v]
        if a == b:
            continue
        key = edge_key(a, b)
        multiplicity[key] = multiplicity.get(key, 0) + 1
    for (a, b), count in multiplicity.items():
        summary.add_edge(a, b, label=str(count), multiplicity=count)
    return SummaryResult(summary, [], graph.order(), graph.size(),
                         graph.size())
