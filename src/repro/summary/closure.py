"""Graph closure and cluster summary graphs (CSG).

CATAPULT summarises each cluster of data graphs into a single *cluster
summary graph* by iteratively applying *graph closure* (He & Singh,
ICDE 2006): two graphs are integrated under a structure-preserving
node mapping; where they disagree, nodes/edges carry *sets* of labels,
and nodes present in only some members are retained as dummy-extended
vertices.  Edge support counts (how many members contain the edge) are
kept because CATAPULT's weighted random walks sample by support.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import GraphError
from repro.graph.graph import Graph, edge_key


class SummaryNode:
    """A closure-graph vertex: label multiset plus a membership count."""

    __slots__ = ("label_counts", "support")

    def __init__(self, labels: Iterable[str], support: int = 1) -> None:
        self.label_counts: Dict[str, int] = {}
        for label in labels:
            self.add_label(label)
        self.support = support

    def add_label(self, label: str) -> None:
        self.label_counts[label] = self.label_counts.get(label, 0) + 1

    @property
    def labels(self) -> Set[str]:
        return set(self.label_counts)

    def __repr__(self) -> str:
        return (f"SummaryNode({sorted(self.label_counts)!r}, "
                f"support={self.support})")


class SummaryEdge:
    """A closure-graph edge: label multiset plus support count."""

    __slots__ = ("label_counts", "support")

    def __init__(self, labels: Iterable[str], support: int = 1) -> None:
        self.label_counts: Dict[str, int] = {}
        for label in labels:
            self.add_label(label)
        self.support = support

    def add_label(self, label: str) -> None:
        self.label_counts[label] = self.label_counts.get(label, 0) + 1

    @property
    def labels(self) -> Set[str]:
        return set(self.label_counts)

    def __repr__(self) -> str:
        return (f"SummaryEdge({sorted(self.label_counts)!r}, "
                f"support={self.support})")


class SummaryGraph:
    """Closure graph of a set of member graphs (a CSG when the members
    form one cluster).

    Node ids are internal integers; every member graph's nodes/edges
    are represented (closure property), with supports recording in how
    many members each element occurs.
    """

    def __init__(self) -> None:
        self.nodes: Dict[int, SummaryNode] = {}
        self.adj: Dict[int, Dict[int, Tuple[int, int]]] = {}
        self.edges: Dict[Tuple[int, int], SummaryEdge] = {}
        self.member_count = 0
        self.member_names: List[str] = []
        self._next_id = 0

    # -- construction ---------------------------------------------------
    def _add_node(self, labels: Iterable[str]) -> int:
        node = self._next_id
        self._next_id += 1
        self.nodes[node] = SummaryNode(labels)
        self.adj[node] = {}
        return node

    def _add_edge(self, u: int, v: int, label: str) -> None:
        key = edge_key(u, v)
        if key in self.edges:
            self.edges[key].add_label(label)
            self.edges[key].support += 1
        else:
            self.edges[key] = SummaryEdge([label])
            self.adj[u][v] = key
            self.adj[v][u] = key

    def merge(self, graph: Graph) -> Dict[int, int]:
        """Closure-merge one member graph; returns its node mapping.

        The mapping is found greedily: member nodes in decreasing
        degree order are matched to summary nodes that (a) share a
        label where possible and (b) are adjacent to the images of
        already-mapped neighbors; unmatched nodes become fresh
        (dummy-extended) summary vertices.
        """
        if graph.order() == 0:
            raise GraphError("cannot merge an empty graph into a summary")
        mapping: Dict[int, int] = {}
        used: Set[int] = set()
        order = sorted(graph.nodes(),
                       key=lambda u: (-graph.degree(u), u))
        for u in order:
            label = graph.node_label(u)
            mapped_nbrs = [mapping[w] for w in graph.neighbors(u)
                           if w in mapping]
            best: Optional[int] = None
            best_score = -1.0
            for candidate, info in self.nodes.items():
                if candidate in used:
                    continue
                adjacency = sum(1 for nbr in mapped_nbrs
                                if nbr in self.adj[candidate])
                label_bonus = 1.0 if label in info.labels else 0.0
                score = 2.0 * adjacency + label_bonus
                # require either a label match or adjacency evidence
                if adjacency == 0 and label_bonus == 0.0:
                    continue
                if score > best_score:
                    best_score = score
                    best = candidate
            if best is None:
                best = self._add_node([])
                self.nodes[best].support = 0  # support bumped below
            mapping[u] = best
            used.add(best)
            self.nodes[best].add_label(label)
            self.nodes[best].support += 1
        for u, v in graph.edges():
            self._add_edge(mapping[u], mapping[v], graph.edge_label(u, v))
        self.member_count += 1
        self.member_names.append(graph.name)
        return mapping

    # -- inspection -----------------------------------------------------
    def order(self) -> int:
        return len(self.nodes)

    def size(self) -> int:
        return len(self.edges)

    def edge_support(self, u: int, v: int) -> int:
        return self.edges[edge_key(u, v)].support

    def neighbors(self, node: int) -> Iterable[int]:
        return self.adj[node].keys()

    def total_edge_support(self) -> int:
        return sum(e.support for e in self.edges.values())

    def sample_node_label(self, node: int, rng: random.Random) -> str:
        """Pick a concrete label for a summary node, weighted by how
        often each label occurred across members (so flattened walks
        emit label combinations that actually co-occur in the data)."""
        counts = self.nodes[node].label_counts
        labels = sorted(counts)
        return rng.choices(labels, weights=[counts[x] for x in labels],
                           k=1)[0]

    def sample_edge_label(self, u: int, v: int, rng: random.Random) -> str:
        counts = self.edges[edge_key(u, v)].label_counts
        labels = sorted(counts)
        return rng.choices(labels, weights=[counts[x] for x in labels],
                           k=1)[0]

    def to_graph(self, rng: Optional[random.Random] = None) -> Graph:
        """Flatten to a plain Graph, sampling one label per element."""
        rng = rng or random.Random(0)
        g = Graph(name="summary")
        for node in self.nodes:
            g.add_node(node, label=self.sample_node_label(node, rng))
        for (u, v) in self.edges:
            g.add_edge(u, v, label=self.sample_edge_label(u, v, rng))
        return g

    def __repr__(self) -> str:
        return (f"<SummaryGraph n={self.order()} m={self.size()} "
                f"members={self.member_count}>")


def build_summary(members: Sequence[Graph]) -> SummaryGraph:
    """Build a cluster summary graph by iterative closure.

    Members are merged in decreasing size order so the largest graph
    anchors the summary (fewer dummy vertices, tighter closure).
    """
    if not members:
        raise GraphError("cannot summarise an empty cluster")
    summary = SummaryGraph()
    for graph in sorted(members, key=lambda g: -g.size()):
        summary.merge(graph)
    return summary


def closure_represents(summary: SummaryGraph, graph: Graph,
                       mapping: Dict[int, int]) -> bool:
    """Check the closure property for one member under its mapping:
    every node and edge of the member is represented in the summary
    with a compatible label."""
    for u in graph.nodes():
        image = mapping.get(u)
        if image is None or image not in summary.nodes:
            return False
        if graph.node_label(u) not in summary.nodes[image].labels:
            return False
    for u, v in graph.edges():
        key = edge_key(mapping[u], mapping[v])
        if key not in summary.edges:
            return False
        if graph.edge_label(u, v) not in summary.edges[key].labels:
            return False
    return True
