"""Graph closure, cluster summary graphs, and pattern-based
graph summarization."""

from repro.summary.closure import (
    SummaryEdge,
    SummaryGraph,
    SummaryNode,
    build_summary,
    closure_represents,
)
from repro.summary.pattern_summary import (
    PatternInstance,
    SummaryResult,
    label_grouping_summary,
    summarize_with_patterns,
)

__all__ = [
    "SummaryEdge",
    "SummaryGraph",
    "SummaryNode",
    "build_summary",
    "closure_represents",
    "PatternInstance",
    "SummaryResult",
    "label_grouping_summary",
    "summarize_with_patterns",
]
