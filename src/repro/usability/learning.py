"""Learning curves: learnability and memorability, simulated.

Two of the §2.1 usability criteria are about time, not a single
session: *learnability* (how fast new users reach competence) and
*memorability* (how much is retained after a break).  Following the
power law of practice (Newell & Rosenbloom), panel-browsing and
interpretation costs shrink as ``n^-alpha`` with the number of
sessions; a break decays practice by a retention factor.

The simulator replays the same workload across sessions with the
practice-adjusted time model and reports the resulting curve, from
which the two criteria are scored.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.graph.graph import Graph
from repro.patterns.base import Pattern
from repro.usability.metrics import ActionTimeModel
from repro.usability.simulator import SimulatedUser
from repro.errors import OptionError

#: power-law-of-practice exponent (literature-typical 0.2-0.4)
DEFAULT_PRACTICE_ALPHA = 0.3
#: fraction of practice surviving a long break
DEFAULT_RETENTION = 0.6


def practice_factor(session: int,
                    alpha: float = DEFAULT_PRACTICE_ALPHA) -> float:
    """Cost multiplier after ``session`` sessions (1-based)."""
    if session < 1:
        raise OptionError("sessions are 1-based")
    return session ** (-alpha)


def practiced_time_model(base: Optional[ActionTimeModel],
                         session: int,
                         alpha: float = DEFAULT_PRACTICE_ALPHA
                         ) -> ActionTimeModel:
    """A time model with practice applied to the perceptual costs.

    Motor costs (pointing, clicking) barely improve; what shrinks
    with familiarity is scanning and interpreting the panel, so only
    those constants are scaled.
    """
    base = base or ActionTimeModel()
    factor = practice_factor(session, alpha)
    return ActionTimeModel(
        action_seconds=base.action_seconds,
        scan_seconds=base.scan_seconds * factor,
        interpret_seconds=base.interpret_seconds * factor,
        error_recovery_seconds=base.error_recovery_seconds)


class LearningCurve:
    """Per-session mean formulation seconds, plus criterion scores."""

    __slots__ = ("session_seconds", "post_break_seconds")

    def __init__(self, session_seconds: List[float],
                 post_break_seconds: float) -> None:
        self.session_seconds = session_seconds
        self.post_break_seconds = post_break_seconds

    def learnability(self) -> float:
        """Relative speedup from first to last session, in [0, 1)."""
        first = self.session_seconds[0]
        last = self.session_seconds[-1]
        if first <= 0:
            return 0.0
        return max(0.0, 1.0 - last / first)

    def memorability(self) -> float:
        """Practice retained over the break, in [0, 1].

        1 = the post-break session is as fast as the last practiced
        one; 0 = all the way back to (or beyond) session one.
        """
        first = self.session_seconds[0]
        last = self.session_seconds[-1]
        span = first - last
        if span <= 0:
            return 1.0
        lost = max(self.post_break_seconds - last, 0.0)
        return max(0.0, 1.0 - lost / span)

    def __repr__(self) -> str:
        return (f"<LearningCurve sessions={len(self.session_seconds)} "
                f"learnability={self.learnability():.2f} "
                f"memorability={self.memorability():.2f}>")


def simulate_learning(workload: Sequence[Graph],
                      panel: Sequence[Pattern], sessions: int = 5,
                      alpha: float = DEFAULT_PRACTICE_ALPHA,
                      retention: float = DEFAULT_RETENTION,
                      error_probability: float = 0.0,
                      seed: int = 0) -> LearningCurve:
    """Replay one workload over ``sessions`` sessions plus a
    post-break probe session."""
    if sessions < 2:
        raise OptionError("need at least two sessions for a curve")
    if not 0.0 <= retention <= 1.0:
        raise OptionError("retention must be in [0, 1]")
    session_seconds: List[float] = []
    for session in range(1, sessions + 1):
        model = practiced_time_model(None, session, alpha)
        user = SimulatedUser(time_model=model,
                             error_probability=error_probability,
                             seed=seed)
        total = sum(user.formulate_with_patterns(query, panel).seconds
                    for query in workload)
        session_seconds.append(total / max(len(workload), 1))
    # break: effective practice level drops to retention * sessions
    effective = max(1.0, retention * sessions)
    factor = effective ** (-alpha)
    base = ActionTimeModel()
    post_model = ActionTimeModel(
        action_seconds=base.action_seconds,
        scan_seconds=base.scan_seconds * factor,
        interpret_seconds=base.interpret_seconds * factor,
        error_recovery_seconds=base.error_recovery_seconds)
    user = SimulatedUser(time_model=post_model,
                         error_probability=error_probability, seed=seed)
    post_total = sum(user.formulate_with_patterns(query, panel).seconds
                     for query in workload)
    return LearningCurve(session_seconds,
                         post_total / max(len(workload), 1))
