"""Preference measures: modelled questionnaire scores (paper §2.3).

Usability evaluations report *performance* measures (steps, time,
errors — see :mod:`repro.usability.study`) and *preference* measures:
"a user's opinion about the interface which is not directly
observable", gathered via questionnaires.  As a stand-in for human
questionnaires (see DESIGN.md's substitution table), this module
derives per-criterion preference scores from the measurable
correlates HCI research ties them to:

* **efficiency** — normalised formulation speed;
* **errors** — slip rate and implied recovery burden;
* **flexibility** — number of formulation modes the interface offers
  (edge-at-a-time, pattern-at-a-time, attribute picking);
* **learnability / memorability** — familiarity and cognitive load of
  the exposed patterns (small generic shapes are learned and
  remembered; dense exotic ones are not);
* **satisfaction** — Berlyne-style response to the panel's visual
  complexity, discounted by gesture frustration (many atomic actions
  for one task frustrate; Shneiderman & Plaisant).

All scores are in [0, 1], higher is better.  The model is
deterministic: identical experiences yield identical "opinions".
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.patterns.base import Pattern
from repro.patterns.scoring import set_cognitive_load
from repro.usability.metrics import FormulationOutcome
from repro.vqi.aesthetics import berlyne_satisfaction, panel_aesthetics
from repro.errors import OptionError

#: the usability criteria of Dix et al. the paper lists (§2.1)
CRITERIA = ("learnability", "flexibility", "robustness", "efficiency",
            "memorability", "errors", "satisfaction")


class PreferenceProfile:
    """Per-criterion preference scores for one interface condition."""

    __slots__ = ("scores",)

    def __init__(self, scores: Dict[str, float]) -> None:
        missing = set(CRITERIA) - set(scores)
        if missing:
            raise OptionError(f"missing criteria: {sorted(missing)}")
        self.scores = {key: min(max(value, 0.0), 1.0)
                       for key, value in scores.items()}

    def composite(self) -> float:
        """Unweighted mean over the seven criteria."""
        return sum(self.scores[c] for c in CRITERIA) / len(CRITERIA)

    def __getitem__(self, criterion: str) -> float:
        return self.scores[criterion]

    def __repr__(self) -> str:
        return f"<PreferenceProfile composite={self.composite():.2f}>"


def _gesture_frustration(outcomes: Sequence[FormulationOutcome]) -> float:
    """Fraction of tasks needing many atomic actions (0 = relaxed)."""
    if not outcomes:
        return 0.0
    mean_steps = sum(o.steps for o in outcomes) / len(outcomes)
    # 5 steps per query reads as effortless; 25+ as painful
    return min(max((mean_steps - 5.0) / 20.0, 0.0), 1.0)


def evaluate_preferences(outcomes: Sequence[FormulationOutcome],
                         panel: Sequence[Pattern],
                         baseline_seconds: float,
                         seed: int = 0) -> PreferenceProfile:
    """Model questionnaire answers after a session.

    ``baseline_seconds`` is the mean manual formulation time for the
    same workload — the anchor against which users judge speed.
    """
    outcomes = list(outcomes)
    n = max(len(outcomes), 1)
    mean_seconds = sum(o.seconds for o in outcomes) / n
    mean_errors = sum(o.errors for o in outcomes) / n
    mean_steps = sum(o.steps for o in outcomes) / n
    pattern_uses = sum(o.pattern_uses for o in outcomes) / n

    # efficiency: perceived speed relative to the manual anchor
    if baseline_seconds <= 0:
        efficiency = 0.5
    else:
        ratio = mean_seconds / baseline_seconds
        efficiency = min(max(1.25 - 0.75 * ratio, 0.0), 1.0)

    # errors: each slip per task hurts noticeably
    errors = math.exp(-1.5 * mean_errors)

    # flexibility: formulation modes actually available/used
    modes = 1.0  # edge-at-a-time always exists
    if panel:
        modes += 1.0  # pattern-at-a-time offered
    if pattern_uses > 0:
        modes += 0.5  # and it actually helped
    flexibility = min(modes / 2.5, 1.0)

    # learnability/memorability: generic small patterns are easy to
    # internalise; heavy panels are not
    if panel:
        load = set_cognitive_load(panel)
        learnability = 1.0 - 0.7 * load
        memorability = 1.0 - 0.5 * load - 0.02 * max(len(panel) - 8, 0)
    else:
        learnability = 0.85  # nothing new to learn, but no help either
        memorability = 0.80

    # robustness: confidence of achieving the goal — dominated by
    # error experience and step burden
    robustness = min(max(1.0 - 0.02 * mean_steps - 0.3 * mean_errors,
                         0.0), 1.0)

    # satisfaction: aesthetic response minus gesture frustration
    if panel:
        aesthetics = panel_aesthetics([p.graph for p in panel], seed=seed)
        aesthetic_term = aesthetics["satisfaction"]
    else:
        aesthetic_term = berlyne_satisfaction(0.0)
    satisfaction = aesthetic_term * (1.0
                                     - 0.6 * _gesture_frustration(
                                         outcomes))

    return PreferenceProfile({
        "learnability": learnability,
        "flexibility": flexibility,
        "robustness": robustness,
        "efficiency": efficiency,
        "memorability": memorability,
        "errors": errors,
        "satisfaction": satisfaction,
    })


def preference_table(profiles: Dict[str, PreferenceProfile]
                     ) -> List[List[str]]:
    """Printable rows: one per condition, criteria + composite."""
    rows: List[List[str]] = []
    for name, profile in profiles.items():
        row = [name]
        row.extend(f"{profile[c]:.2f}" for c in CRITERIA)
        row.append(f"{profile.composite():.2f}")
        rows.append(row)
    return rows
