"""HCI-grounded cost model for visual query formulation.

Action times follow the Keystroke-Level-Model tradition: every
gesture decomposes into mental preparation, pointing, and clicking,
with literature-typical constants.  Browsing the Pattern Panel before
dropping a pattern costs time that grows with the number of displayed
patterns and their cognitive load — the reason the canned-pattern
literature insists on small, low-load, high-coverage panels.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from repro.patterns.base import Pattern
from repro.patterns.scoring import cognitive_load
from repro.errors import UnknownNameError

#: seconds per atomic gesture (mental prep + point + click/drag)
DEFAULT_ACTION_SECONDS: Dict[str, float] = {
    "add_node": 1.1,
    "add_edge": 1.5,
    "set_node_label": 1.2,
    "set_edge_label": 1.2,
    "add_pattern": 1.3,
    "merge_nodes": 1.4,
    "delete_node": 0.9,
    "delete_edge": 0.9,
}

#: scanning one pattern thumbnail in the panel
SCAN_SECONDS = 0.30
#: interpreting a thumbnail, scaled by its cognitive load
INTERPRET_SECONDS = 1.0
#: recovering from one formulation error (notice + delete + redo)
ERROR_RECOVERY_SECONDS = 2.5


class ActionTimeModel:
    """Maps action kinds and panel browsing to elapsed seconds."""

    def __init__(self,
                 action_seconds: Dict[str, float] | None = None,
                 scan_seconds: float = SCAN_SECONDS,
                 interpret_seconds: float = INTERPRET_SECONDS,
                 error_recovery_seconds: float = ERROR_RECOVERY_SECONDS
                 ) -> None:
        self.action_seconds = dict(action_seconds
                                   or DEFAULT_ACTION_SECONDS)
        self.scan_seconds = scan_seconds
        self.interpret_seconds = interpret_seconds
        self.error_recovery_seconds = error_recovery_seconds

    def action_time(self, kind: str) -> float:
        if kind not in self.action_seconds:
            raise UnknownNameError(f"no time constant for action kind {kind!r}")
        return self.action_seconds[kind]

    def browse_time(self, panel_patterns: Sequence[Pattern]) -> float:
        """Expected time to locate a pattern in the panel.

        The user scans thumbnails sequentially and interprets each one
        (interpretation effort grows with cognitive load); on average
        half the panel is scanned before the wanted pattern is found.
        """
        if not panel_patterns:
            return 0.0
        per_pattern = [
            self.scan_seconds
            + self.interpret_seconds * cognitive_load(p.graph)
            for p in panel_patterns]
        return sum(per_pattern) / 2.0


class FormulationOutcome:
    """Measured cost of formulating one query."""

    __slots__ = ("steps", "seconds", "errors", "pattern_uses",
                 "action_counts")

    def __init__(self, steps: int, seconds: float, errors: int,
                 pattern_uses: int,
                 action_counts: Dict[str, int]) -> None:
        self.steps = steps
        self.seconds = seconds
        self.errors = errors
        self.pattern_uses = pattern_uses
        self.action_counts = action_counts

    def __repr__(self) -> str:
        return (f"<FormulationOutcome steps={self.steps} "
                f"time={self.seconds:.1f}s errors={self.errors}>")


def summarize_outcomes(outcomes: Iterable[FormulationOutcome]
                       ) -> Dict[str, float]:
    """Mean steps / time / errors over a workload."""
    outcomes = list(outcomes)
    if not outcomes:
        return {"queries": 0, "mean_steps": 0.0, "mean_seconds": 0.0,
                "mean_errors": 0.0, "mean_pattern_uses": 0.0}
    n = len(outcomes)
    return {
        "queries": n,
        "mean_steps": sum(o.steps for o in outcomes) / n,
        "mean_seconds": sum(o.seconds for o in outcomes) / n,
        "mean_errors": sum(o.errors for o in outcomes) / n,
        "mean_pattern_uses": sum(o.pattern_uses for o in outcomes) / n,
    }
