"""One-call usability reports (Markdown).

Bundles the three measurement families — performance (steps / time /
errors), preference (modelled questionnaire scores), and learning
(practice curve) — into a single Markdown document comparing a manual
VQI against a data-driven panel over one workload.  This is the
artifact a usability evaluation section would be written from.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.graph.graph import Graph
from repro.patterns.base import Pattern
from repro.patterns.basic import default_basic_patterns
from repro.usability.learning import simulate_learning
from repro.usability.preference import (
    CRITERIA,
    evaluate_preferences,
)
from repro.usability.study import StudyCondition, run_study


class UsabilityReport:
    """The rendered report plus the raw numbers behind it."""

    __slots__ = ("markdown", "study", "preferences", "learning_curve")

    def __init__(self, markdown: str, study, preferences,
                 learning_curve) -> None:
        self.markdown = markdown
        self.study = study
        self.preferences = preferences
        self.learning_curve = learning_curve

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.markdown)

    def __repr__(self) -> str:
        return f"<UsabilityReport {len(self.markdown)} chars>"


def _markdown_table(header: Sequence[str],
                    rows: Sequence[Sequence[str]]) -> List[str]:
    lines = ["| " + " | ".join(str(h) for h in header) + " |",
             "|" + "---|" * len(header)]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return lines


def usability_report(workload: Sequence[Graph],
                     canned: Sequence[Pattern],
                     title: str = "Usability evaluation",
                     error_probability: float = 0.03,
                     learning_sessions: int = 4,
                     seed: int = 0) -> UsabilityReport:
    """Run the full evaluation battery and render it as Markdown."""
    panel = default_basic_patterns() + list(canned)
    study = run_study(list(workload), [
        StudyCondition("manual", []),
        StudyCondition("data-driven", panel),
    ], error_probability=error_probability, seed=seed)
    baseline = study.by_name("manual").summary["mean_seconds"]
    preferences = {
        "manual": evaluate_preferences(
            study.by_name("manual").outcomes, [], baseline),
        "data-driven": evaluate_preferences(
            study.by_name("data-driven").outcomes, panel, baseline),
    }
    curve = simulate_learning(list(workload)[:10], panel,
                              sessions=learning_sessions, seed=seed)

    lines: List[str] = [f"# {title}", ""]
    lines.append(f"Workload: {len(workload)} queries; simulated users "
                 f"with {error_probability:.0%} slip rate; panel of "
                 f"{len(panel)} patterns "
                 f"({len(canned)} canned).")
    lines.append("")
    lines.append("## Performance measures")
    lines.append("")
    perf_rows = []
    for row in study.table_rows():
        perf_rows.append((row["condition"],
                          f"{row['mean_steps']:.1f}",
                          f"{row['mean_seconds']:.1f}",
                          f"{row['mean_errors']:.2f}",
                          f"{row['mean_pattern_uses']:.2f}"))
    lines.extend(_markdown_table(
        ("condition", "steps", "time (s)", "errors", "pattern uses"),
        perf_rows))
    reduction = study.step_reduction("manual", "data-driven")
    speedup = study.speedup("manual", "data-driven")
    lines.append("")
    lines.append(f"Data-driven vs manual: **{reduction:.0%} fewer "
                 f"steps**, **{speedup:.2f}x faster**.")
    lines.append("")
    lines.append("## Preference measures (modelled)")
    lines.append("")
    pref_rows = []
    for name, profile in preferences.items():
        pref_rows.append([name]
                         + [f"{profile[c]:.2f}" for c in CRITERIA]
                         + [f"{profile.composite():.2f}"])
    lines.extend(_markdown_table(("condition",) + CRITERIA
                                 + ("composite",), pref_rows))
    lines.append("")
    lines.append("## Learning curve (data-driven panel)")
    lines.append("")
    curve_rows = [(i + 1, f"{seconds:.2f}")
                  for i, seconds in enumerate(curve.session_seconds)]
    curve_rows.append(("post-break", f"{curve.post_break_seconds:.2f}"))
    lines.extend(_markdown_table(("session", "mean seconds/query"),
                                 curve_rows))
    lines.append("")
    lines.append(f"Learnability {curve.learnability():.2f}, "
                 f"memorability {curve.memorability():.2f}.")
    lines.append("")
    return UsabilityReport("\n".join(lines), study, preferences, curve)
