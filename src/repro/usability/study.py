"""Usability study runner: manual vs data-driven VQI over a workload.

Reproduces the performance-measure side of the usability evaluations
the tutorial summarises (§2.3/§2.4): query formulation steps, time,
and error counts, per interface condition.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.graph.graph import Graph
from repro.patterns.base import Pattern
from repro.usability.metrics import (
    ActionTimeModel,
    FormulationOutcome,
    summarize_outcomes,
)
from repro.usability.simulator import SimulatedUser
from repro.errors import UnknownNameError


class StudyCondition:
    """One interface condition in a study.

    ``panel`` is the pattern list available to the simulated user —
    empty for a pure edge-at-a-time manual VQI, basic patterns for a
    typical manual VQI, basic + canned for a data-driven VQI.
    """

    __slots__ = ("name", "panel")

    def __init__(self, name: str, panel: Sequence[Pattern] = ()) -> None:
        self.name = name
        self.panel = list(panel)

    def __repr__(self) -> str:
        return f"<StudyCondition {self.name!r} panel={len(self.panel)}>"


class ConditionResult:
    """Per-condition outcomes and aggregates."""

    __slots__ = ("condition", "outcomes", "summary")

    def __init__(self, condition: StudyCondition,
                 outcomes: List[FormulationOutcome]) -> None:
        self.condition = condition
        self.outcomes = outcomes
        self.summary = summarize_outcomes(outcomes)

    def __repr__(self) -> str:
        return (f"<ConditionResult {self.condition.name!r} "
                f"steps={self.summary['mean_steps']:.1f} "
                f"time={self.summary['mean_seconds']:.1f}s>")


class StudyResult:
    """All conditions of one study, with comparison helpers."""

    def __init__(self, results: List[ConditionResult]) -> None:
        self.results = results

    def by_name(self, name: str) -> ConditionResult:
        for result in self.results:
            if result.condition.name == name:
                return result
        raise UnknownNameError(f"no condition named {name!r}")

    def speedup(self, baseline: str, treatment: str) -> float:
        """Formulation-time ratio baseline/treatment (>1 = faster)."""
        base = self.by_name(baseline).summary["mean_seconds"]
        treat = self.by_name(treatment).summary["mean_seconds"]
        return base / treat if treat > 0 else float("inf")

    def step_reduction(self, baseline: str, treatment: str) -> float:
        """Relative step reduction of treatment vs baseline, in [0, 1]."""
        base = self.by_name(baseline).summary["mean_steps"]
        treat = self.by_name(treatment).summary["mean_steps"]
        return 1.0 - treat / base if base > 0 else 0.0

    def table_rows(self) -> List[Dict[str, float]]:
        """Printable rows: one per condition."""
        rows = []
        for result in self.results:
            row: Dict[str, float] = {"condition": result.condition.name}
            row.update(result.summary)
            rows.append(row)
        return rows


def run_study(workload: Sequence[Graph],
              conditions: Sequence[StudyCondition],
              time_model: Optional[ActionTimeModel] = None,
              error_probability: float = 0.0,
              seed: int = 0) -> StudyResult:
    """Simulate every query under every condition.

    Each condition gets an identically-seeded user so differences come
    from the interface, not the random slips.
    """
    results: List[ConditionResult] = []
    for condition in conditions:
        user = SimulatedUser(time_model=time_model,
                             error_probability=error_probability,
                             seed=seed)
        outcomes: List[FormulationOutcome] = []
        for query in workload:
            if condition.panel:
                outcomes.append(
                    user.formulate_with_patterns(query, condition.panel))
            else:
                outcomes.append(user.formulate_manual(query))
        results.append(ConditionResult(condition, outcomes))
    return StudyResult(results)
