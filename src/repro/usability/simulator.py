"""Simulated users formulating visual queries.

Substitute for the human-subject studies the surveyed papers ran
(see DESIGN.md): a simulated user is given a target query graph and a
VQI configuration, and mechanically produces the action sequence a
competent user would.  Two strategies are modelled:

* **edge-at-a-time** — the manual-VQI baseline: every node is placed
  and labeled, every edge drawn (and labeled) individually;
* **pattern-at-a-time** — the data-driven mode: the user repeatedly
  drops the panel pattern that pays for itself best (covering many
  target edges for one drop plus merge gestures), then finishes the
  remainder edge-at-a-time.

An optional per-action slip probability injects errors whose recovery
costs extra actions and time, reproducing the papers' "fewer steps ->
fewer errors" effect.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.graph.graph import Graph, edge_key
from repro.matching.isomorphism import WILDCARD, subgraph_embeddings
from repro.patterns.base import Pattern
from repro.usability.metrics import ActionTimeModel, FormulationOutcome
from repro.errors import OptionError


class SimulatedUser:
    """A deterministic (seeded) query-formulating agent."""

    def __init__(self, time_model: Optional[ActionTimeModel] = None,
                 error_probability: float = 0.0, seed: int = 0) -> None:
        if not 0.0 <= error_probability < 1.0:
            raise OptionError("error probability must be in [0, 1)")
        self.time_model = time_model or ActionTimeModel()
        self.error_probability = error_probability
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    def _charge(self, kind: str, counts: Dict[str, int],
                state: Dict[str, float]) -> None:
        """Account one action, with probabilistic slip recovery."""
        counts[kind] = counts.get(kind, 0) + 1
        state["steps"] += 1
        state["seconds"] += self.time_model.action_time(kind)
        if (self.error_probability
                and self._rng.random() < self.error_probability):
            state["errors"] += 1
            state["steps"] += 2  # delete + redo
            state["seconds"] += self.time_model.error_recovery_seconds

    # ------------------------------------------------------------------
    def formulate_manual(self, target: Graph) -> FormulationOutcome:
        """Edge-at-a-time formulation of the whole target query."""
        counts: Dict[str, int] = {}
        state = {"steps": 0.0, "seconds": 0.0, "errors": 0.0}
        for node in target.nodes():
            self._charge("add_node", counts, state)
            if target.node_label(node) not in ("", WILDCARD):
                self._charge("set_node_label", counts, state)
        for u, v in target.edges():
            self._charge("add_edge", counts, state)
            if target.edge_label(u, v) not in ("", WILDCARD):
                self._charge("set_edge_label", counts, state)
        return FormulationOutcome(int(state["steps"]), state["seconds"],
                                  int(state["errors"]), 0, counts)

    # ------------------------------------------------------------------
    def _best_placement(self, target: Graph, patterns: Sequence[Pattern],
                        covered: Set[Tuple[int, int]],
                        placed: Set[int]
                        ) -> Optional[Tuple[Pattern, Dict[int, int],
                                            float]]:
        """The pattern placement with the best net gesture savings.

        A placement of pattern p via embedding f costs one drop plus
        one merge per already-placed image node plus one label fix per
        wildcard element; it saves the manual cost of the new nodes
        and newly covered edges.  Returns the placement with maximal
        positive savings, or None.
        """
        best: Optional[Tuple[Pattern, Dict[int, int], float]] = None
        for pattern in patterns:
            if pattern.size() < 2:
                continue  # single edges save nothing over manual mode
            embeddings = subgraph_embeddings(pattern.graph, target,
                                             max_results=20)
            for mapping in embeddings:
                new_edges = 0
                labeled_new_edges = 0
                for u, v in pattern.graph.edges():
                    key = edge_key(mapping[u], mapping[v])
                    if key not in covered:
                        new_edges += 1
                        if target.edge_label(*key) not in ("", WILDCARD):
                            labeled_new_edges += 1
                if new_edges == 0:
                    continue
                image = set(mapping.values())
                merges = len(image & placed)
                new_nodes = len(image - placed)
                labeled_new_nodes = sum(
                    1 for t in image - placed
                    if target.node_label(t) not in ("", WILDCARD))
                node_fixes = sum(
                    1 for u in pattern.graph.nodes()
                    if pattern.graph.node_label(u) == WILDCARD
                    and target.node_label(mapping[u]) not in ("", WILDCARD))
                edge_fixes = sum(
                    1 for u, v in pattern.graph.edges()
                    if pattern.graph.edge_label(u, v) == WILDCARD
                    and target.edge_label(mapping[u], mapping[v])
                    not in ("", WILDCARD))
                manual_cost = (new_nodes + labeled_new_nodes
                               + new_edges + labeled_new_edges)
                pattern_cost = 1 + merges + node_fixes + edge_fixes
                savings = manual_cost - pattern_cost
                if savings <= 0:
                    continue
                if best is None or savings > best[2]:
                    best = (pattern, mapping, savings)
        return best

    def formulate_with_patterns(self, target: Graph,
                                panel: Sequence[Pattern]
                                ) -> FormulationOutcome:
        """Pattern-at-a-time formulation using the given Pattern Panel."""
        counts: Dict[str, int] = {}
        state = {"steps": 0.0, "seconds": 0.0, "errors": 0.0}
        covered: Set[Tuple[int, int]] = set()
        placed: Set[int] = set()
        pattern_uses = 0
        while True:
            placement = self._best_placement(target, panel, covered,
                                             placed)
            if placement is None:
                break
            pattern, mapping, _ = placement
            pattern_uses += 1
            state["seconds"] += self.time_model.browse_time(panel)
            self._charge("add_pattern", counts, state)
            image = set(mapping.values())
            for _ in image & placed:
                self._charge("merge_nodes", counts, state)
            for u in pattern.graph.nodes():
                if (pattern.graph.node_label(u) == WILDCARD
                        and target.node_label(mapping[u])
                        not in ("", WILDCARD)):
                    self._charge("set_node_label", counts, state)
            for u, v in pattern.graph.edges():
                covered.add(edge_key(mapping[u], mapping[v]))
                if (pattern.graph.edge_label(u, v) == WILDCARD
                        and target.edge_label(mapping[u], mapping[v])
                        not in ("", WILDCARD)):
                    self._charge("set_edge_label", counts, state)
            placed |= image
        # finish the remainder edge-at-a-time
        for node in target.nodes():
            if node not in placed:
                self._charge("add_node", counts, state)
                if target.node_label(node) not in ("", WILDCARD):
                    self._charge("set_node_label", counts, state)
                placed.add(node)
        for u, v in target.edges():
            if edge_key(u, v) not in covered:
                self._charge("add_edge", counts, state)
                if target.edge_label(u, v) not in ("", WILDCARD):
                    self._charge("set_edge_label", counts, state)
        return FormulationOutcome(int(state["steps"]), state["seconds"],
                                  int(state["errors"]), pattern_uses,
                                  counts)
