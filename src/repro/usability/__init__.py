"""Simulated usability evaluation of VQIs."""

from repro.usability.metrics import (
    DEFAULT_ACTION_SECONDS,
    ActionTimeModel,
    FormulationOutcome,
    summarize_outcomes,
)
from repro.usability.learning import (
    DEFAULT_PRACTICE_ALPHA,
    DEFAULT_RETENTION,
    LearningCurve,
    practice_factor,
    practiced_time_model,
    simulate_learning,
)
from repro.usability.preference import (
    CRITERIA,
    PreferenceProfile,
    evaluate_preferences,
    preference_table,
)
from repro.usability.report import UsabilityReport, usability_report
from repro.usability.simulator import SimulatedUser
from repro.usability.study import (
    ConditionResult,
    StudyCondition,
    StudyResult,
    run_study,
)

__all__ = [
    "DEFAULT_ACTION_SECONDS",
    "ActionTimeModel",
    "FormulationOutcome",
    "summarize_outcomes",
    "SimulatedUser",
    "UsabilityReport",
    "usability_report",
    "CRITERIA",
    "DEFAULT_PRACTICE_ALPHA",
    "DEFAULT_RETENTION",
    "LearningCurve",
    "practice_factor",
    "practiced_time_model",
    "simulate_learning",
    "PreferenceProfile",
    "evaluate_preferences",
    "preference_table",
    "ConditionResult",
    "StudyCondition",
    "StudyResult",
    "run_study",
]
