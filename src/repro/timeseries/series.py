"""Time-series substrate for the sketch-query interface (§2.5).

The tutorial's "Beyond Graphs" direction: the data-driven paradigm
applies wherever visual querying is prevalent, e.g. sketch-based
querying of time series.  This module provides the data model and a
seeded generator that plants recurring shape motifs (spikes, steps,
ramps, dips, oscillations) the same way the chemical generator plants
graph motifs — so a canned-*sketch* selector has something to find.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ReproError


class TimeSeriesError(ReproError):
    """Invalid time-series input."""


class TimeSeries:
    """A named, fixed-length univariate series."""

    __slots__ = ("name", "values")

    def __init__(self, values: Sequence[float], name: str = "") -> None:
        if len(values) < 2:
            raise TimeSeriesError("a series needs at least 2 points")
        self.name = name
        self.values = np.asarray(values, dtype=float)

    def __len__(self) -> int:
        return len(self.values)

    def znormalized(self) -> np.ndarray:
        """Zero-mean unit-variance copy (flat series stay zero)."""
        std = float(self.values.std())
        if std < 1e-12:
            return np.zeros_like(self.values)
        return (self.values - self.values.mean()) / std

    def window(self, start: int, length: int) -> np.ndarray:
        if start < 0 or start + length > len(self.values):
            raise TimeSeriesError(
                f"window [{start}, {start + length}) out of range")
        return self.values[start:start + length]

    def __repr__(self) -> str:
        return f"<TimeSeries {self.name!r} n={len(self.values)}>"


# ----------------------------------------------------------------------
# shape motifs (each returns ``length`` points in roughly [-1, 1])
# ----------------------------------------------------------------------


def spike_motif(length: int, rng: random.Random) -> np.ndarray:
    xs = np.linspace(-3, 3, length)
    return np.exp(-xs ** 2) * rng.uniform(1.5, 2.5)


def step_motif(length: int, rng: random.Random) -> np.ndarray:
    level = rng.uniform(1.0, 2.0)
    out = np.zeros(length)
    out[length // 2:] = level
    return out


def ramp_motif(length: int, rng: random.Random) -> np.ndarray:
    return np.linspace(0, rng.uniform(1.0, 2.0), length)


def dip_motif(length: int, rng: random.Random) -> np.ndarray:
    xs = np.linspace(-3, 3, length)
    return -np.exp(-xs ** 2) * rng.uniform(1.5, 2.5)


def cycle_motif(length: int, rng: random.Random) -> np.ndarray:
    periods = rng.randint(2, 3)
    xs = np.linspace(0, periods * 2 * math.pi, length)
    return np.sin(xs) * rng.uniform(0.8, 1.4)


MOTIF_LIBRARY: Dict[str, Callable[[int, random.Random], np.ndarray]] = {
    "spike": spike_motif,
    "step": step_motif,
    "ramp": ramp_motif,
    "dip": dip_motif,
    "cycle": cycle_motif,
}


def generate_series(rng: random.Random, length: int = 200,
                    motif_count: int = 2, motif_length: int = 40,
                    noise: float = 0.12,
                    motif_weights: Optional[Sequence[float]] = None,
                    name: str = "") -> TimeSeries:
    """One series: a noisy baseline with planted shape motifs."""
    if length < motif_length * motif_count:
        raise TimeSeriesError("series too short for the motif count")
    names = list(MOTIF_LIBRARY)
    weights = list(motif_weights) if motif_weights else [1.0] * len(names)
    if len(weights) != len(names):
        raise TimeSeriesError(
            f"motif_weights must have {len(names)} entries")
    values = np.array([rng.gauss(0.0, noise) for _ in range(length)])
    slots = sorted(rng.sample(range(0, length - motif_length,
                                    motif_length),
                              motif_count))
    planted: List[str] = []
    for start in slots:
        motif_name = rng.choices(names, weights=weights, k=1)[0]
        planted.append(motif_name)
        shape = MOTIF_LIBRARY[motif_name](motif_length, rng)
        values[start:start + motif_length] += shape
    series = TimeSeries(values, name=name)
    return series


def generate_series_collection(count: int, seed: int = 0,
                               length: int = 200,
                               motif_weights: Optional[Sequence[float]]
                               = None) -> List[TimeSeries]:
    """A repository of series with recurring planted shapes."""
    if count < 0:
        raise TimeSeriesError("collection size must be non-negative")
    rng = random.Random(seed)
    return [generate_series(rng, length=length, name=f"ts{i}",
                            motif_weights=motif_weights)
            for i in range(count)]
