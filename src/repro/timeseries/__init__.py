"""Beyond graphs: data-driven sketch-query interfaces for time series
(the tutorial's §2.5 "Beyond Graphs" direction)."""

from repro.timeseries.sax import (
    paa,
    sax_word,
    sliding_sax_words,
    word_complexity,
    znorm,
)
from repro.timeseries.series import (
    MOTIF_LIBRARY,
    TimeSeries,
    TimeSeriesError,
    generate_series,
    generate_series_collection,
)
from repro.timeseries.sketch import (
    SketchBudget,
    SketchMatch,
    SketchPattern,
    SketchVQI,
    match_sketch,
    mine_sketch_candidates,
    select_canned_sketches,
    sketch_set_diversity,
    word_distance,
)

__all__ = [
    "paa",
    "sax_word",
    "sliding_sax_words",
    "word_complexity",
    "znorm",
    "MOTIF_LIBRARY",
    "TimeSeries",
    "TimeSeriesError",
    "generate_series",
    "generate_series_collection",
    "SketchBudget",
    "SketchMatch",
    "SketchPattern",
    "SketchVQI",
    "match_sketch",
    "mine_sketch_candidates",
    "select_canned_sketches",
    "sketch_set_diversity",
    "word_distance",
]
