"""SAX discretization (PAA + symbolic aggregate approximation).

Subsequences are z-normalized, piecewise-aggregate-approximated, and
mapped to symbols via the standard normal-quantile breakpoints.  SAX
words are the time-series analogue of canonical codes: identical
words = same shape class, which is what the canned-sketch miner
counts.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.timeseries.series import TimeSeries, TimeSeriesError

#: standard normal breakpoints for alphabet sizes 3..6
_BREAKPOINTS: Dict[int, Tuple[float, ...]] = {
    3: (-0.4307, 0.4307),
    4: (-0.6745, 0.0, 0.6745),
    5: (-0.8416, -0.2533, 0.2533, 0.8416),
    6: (-0.9674, -0.4307, 0.0, 0.4307, 0.9674),
}

_ALPHABET = "abcdef"


def paa(values: np.ndarray, segments: int) -> np.ndarray:
    """Piecewise aggregate approximation to ``segments`` means."""
    n = len(values)
    if segments < 1 or segments > n:
        raise TimeSeriesError(
            f"cannot reduce {n} points to {segments} segments")
    # split indices as evenly as possible
    bounds = np.linspace(0, n, segments + 1).astype(int)
    return np.array([values[bounds[i]:bounds[i + 1]].mean()
                     for i in range(segments)])


def znorm(values: np.ndarray) -> np.ndarray:
    """Z-normalize; near-constant windows map to all-zeros."""
    std = float(values.std())
    if std < 1e-12:
        return np.zeros_like(values, dtype=float)
    return (values - values.mean()) / std


def sax_word(values: Sequence[float], segments: int = 8,
             alphabet: int = 4) -> str:
    """SAX word of one subsequence."""
    if alphabet not in _BREAKPOINTS:
        raise TimeSeriesError(
            f"alphabet size {alphabet} unsupported "
            f"(choose {sorted(_BREAKPOINTS)})")
    arr = znorm(np.asarray(values, dtype=float))
    reduced = paa(arr, segments)
    breakpoints = _BREAKPOINTS[alphabet]
    word = []
    for value in reduced:
        symbol = 0
        for breakpoint in breakpoints:
            if value > breakpoint:
                symbol += 1
        word.append(_ALPHABET[symbol])
    return "".join(word)


def sliding_sax_words(series: TimeSeries, window: int, step: int = 1,
                      segments: int = 8, alphabet: int = 4
                      ) -> List[Tuple[int, str]]:
    """(start, word) for every sliding window of the series."""
    if window > len(series):
        return []
    if step < 1:
        raise TimeSeriesError("step must be >= 1")
    out: List[Tuple[int, str]] = []
    for start in range(0, len(series) - window + 1, step):
        out.append((start, sax_word(series.values[start:start + window],
                                    segments=segments,
                                    alphabet=alphabet)))
    return out


def word_complexity(word: str) -> float:
    """Cognitive-load analogue for sketches, in [0, 1).

    Counts direction changes and symbol span: flat or monotone shapes
    are easy to read, oscillating full-range shapes are hard.
    """
    if len(word) < 2:
        return 0.0
    levels = [ord(c) - ord("a") for c in word]
    changes = 0
    previous = 0
    for i in range(1, len(levels)):
        delta = levels[i] - levels[i - 1]
        direction = (delta > 0) - (delta < 0)
        if direction != 0 and previous != 0 and direction != previous:
            changes += 1
        if direction != 0:
            previous = direction
    span = (max(levels) - min(levels)) / max(len(_ALPHABET) - 1, 1)
    raw = changes / (len(word) - 1) + 0.5 * span
    return min(raw / 1.5, 0.999)
