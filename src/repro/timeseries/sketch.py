"""Data-driven canned-sketch selection and sketch-query matching.

The graph recipe transplanted to time series: mine recurring shapes
(SAX words) from the collection, score candidates on coverage
(how many series contain the shape), diversity (distinct words), and
complexity (the sketch-reading analogue of cognitive load), then
greedily fill the sketch panel.  Users start a query from a canned
sketch instead of free-drawing — the bottom-up search mode the paper
argues every good visual query interface needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import BudgetError
from repro.timeseries.sax import (
    sliding_sax_words,
    word_complexity,
    znorm,
)
from repro.timeseries.series import TimeSeries, TimeSeriesError


class SketchPattern:
    """A canned sketch: representative subsequence + its SAX word."""

    __slots__ = ("word", "values", "support", "source")

    def __init__(self, word: str, values: np.ndarray, support: int,
                 source: str = "") -> None:
        self.word = word
        self.values = np.asarray(values, dtype=float)
        self.support = support
        self.source = source

    @property
    def complexity(self) -> float:
        return word_complexity(self.word)

    def __repr__(self) -> str:
        return (f"<SketchPattern {self.word!r} support={self.support} "
                f"complexity={self.complexity:.2f}>")


class SketchBudget:
    """Display budget for a Sketch Panel."""

    __slots__ = ("max_sketches", "window")

    def __init__(self, max_sketches: int, window: int = 40) -> None:
        if max_sketches < 1:
            raise BudgetError("budget must allow at least one sketch")
        if window < 4:
            raise BudgetError("sketch window must be >= 4 points")
        self.max_sketches = max_sketches
        self.window = window


def mine_sketch_candidates(collection: Sequence[TimeSeries],
                           budget: SketchBudget, step: int = 5,
                           segments: int = 8, alphabet: int = 4,
                           min_support: int = 2) -> List[SketchPattern]:
    """Frequent SAX-word shapes across the collection.

    Support is document frequency (series containing the word); the
    representative subsequence is the first occurrence seen.
    """
    supports: Dict[str, int] = {}
    representatives: Dict[str, np.ndarray] = {}
    for series in collection:
        seen: Set[str] = set()
        for start, word in sliding_sax_words(series, budget.window,
                                             step=step,
                                             segments=segments,
                                             alphabet=alphabet):
            if word in seen:
                continue
            seen.add(word)
            supports[word] = supports.get(word, 0) + 1
            if word not in representatives:
                representatives[word] = series.window(start,
                                                      budget.window)
    return [SketchPattern(word, representatives[word], support,
                          source="mined")
            for word, support in sorted(supports.items())
            if support >= min_support]


def word_distance(w1: str, w2: str) -> float:
    """Mean per-symbol level distance between equal-length words."""
    if len(w1) != len(w2):
        raise TimeSeriesError("words must have equal length")
    total = sum(abs(ord(a) - ord(b)) for a, b in zip(w1, w2))
    return total / len(w1)


def sketch_set_diversity(sketches: Sequence[SketchPattern]) -> float:
    """1 == maximally spread shapes; <2 sketches count as diverse."""
    if len(sketches) < 2:
        return 1.0
    total = 0.0
    pairs = 0
    for i, s1 in enumerate(sketches):
        for s2 in sketches[i + 1:]:
            total += min(word_distance(s1.word, s2.word) / 3.0, 1.0)
            pairs += 1
    return total / pairs


def select_canned_sketches(collection: Sequence[TimeSeries],
                           budget: SketchBudget,
                           weights: Tuple[float, float, float]
                           = (1.0, 1.0, 0.5),
                           step: int = 5, min_support: int = 2
                           ) -> List[SketchPattern]:
    """Greedy sketch-panel selection (coverage + diversity - load)."""
    if not collection:
        raise TimeSeriesError("cannot select sketches from no data")
    candidates = mine_sketch_candidates(collection, budget, step=step,
                                        min_support=min_support)
    if not candidates:
        return []
    w_cov, w_div, w_load = weights
    total = len(collection)
    # precompute each series' word set once; coverage queries become
    # cheap set intersections
    series_words: List[Set[str]] = [
        {w for _, w in sliding_sax_words(series, budget.window,
                                         step=step)}
        for series in collection]

    def score(chosen: List[SketchPattern]) -> float:
        if not chosen:
            return 0.0
        covered = {sketch.word for sketch in chosen}
        hits = sum(1 for words in series_words if words & covered)
        cov = hits / total
        div = sketch_set_diversity(chosen)
        load = sum(s.complexity for s in chosen) / len(chosen)
        return (w_cov * cov + w_div * div + w_load * (1.0 - load)) / \
            (w_cov + w_div + w_load)

    selected: List[SketchPattern] = []
    chosen_words: Set[str] = set()
    while len(selected) < budget.max_sketches:
        best = None
        best_score = float("-inf")
        for candidate in candidates:
            if candidate.word in chosen_words:
                continue
            value = score(selected + [candidate])
            if value > best_score:
                best_score = value
                best = candidate
        if best is None:
            break
        selected.append(best)
        chosen_words.add(best.word)
    return selected


class SketchMatch:
    """One match of a sketch query in one series."""

    __slots__ = ("series", "start", "distance")

    def __init__(self, series: TimeSeries, start: int,
                 distance: float) -> None:
        self.series = series
        self.start = start
        self.distance = distance

    def __repr__(self) -> str:
        return (f"<SketchMatch {self.series.name!r}@{self.start} "
                f"d={self.distance:.3f}>")


def match_sketch(query: Sequence[float],
                 collection: Sequence[TimeSeries],
                 top_k: int = 10, step: int = 1) -> List[SketchMatch]:
    """Best z-normalized Euclidean matches of a sketch.

    The classic sliding-window subsequence search behind sketch-query
    systems: the drawn shape is compared against every window of every
    series after z-normalization (shape, not scale, is what matters).
    """
    query_arr = znorm(np.asarray(query, dtype=float))
    window = len(query_arr)
    if window < 2:
        raise TimeSeriesError("a sketch needs at least 2 points")
    matches: List[SketchMatch] = []
    for series in collection:
        if len(series) < window:
            continue
        best_start = -1
        best_distance = float("inf")
        for start in range(0, len(series) - window + 1, step):
            segment = znorm(series.values[start:start + window])
            distance = float(np.linalg.norm(segment - query_arr))
            if distance < best_distance:
                best_distance = distance
                best_start = start
        if best_start >= 0:
            matches.append(SketchMatch(series, best_start,
                                       best_distance / np.sqrt(window)))
    matches.sort(key=lambda m: m.distance)
    return matches[:top_k]


class SketchVQI:
    """Minimal sketch-query interface: panel + query + results."""

    def __init__(self, collection: Sequence[TimeSeries],
                 budget: SketchBudget,
                 weights: Tuple[float, float, float] = (1.0, 1.0, 0.5)
                 ) -> None:
        self.collection = list(collection)
        self.budget = budget
        self.panel = select_canned_sketches(self.collection, budget,
                                            weights=weights)
        self.query: Optional[np.ndarray] = None
        self.results: List[SketchMatch] = []

    def start_from_sketch(self, index: int) -> np.ndarray:
        """Bottom-up: seed the query from a canned sketch."""
        self.query = np.array(self.panel[index].values, dtype=float)
        return self.query

    def draw(self, values: Sequence[float]) -> np.ndarray:
        """Top-down: free-drawn query."""
        self.query = np.asarray(values, dtype=float)
        return self.query

    def execute(self, top_k: int = 10) -> List[SketchMatch]:
        if self.query is None:
            raise TimeSeriesError("no sketch drawn yet")
        self.results = match_sketch(self.query, self.collection,
                                    top_k=top_k)
        return self.results

    def __repr__(self) -> str:
        return (f"<SketchVQI series={len(self.collection)} "
                f"panel={len(self.panel)}>")
