"""Visual query formulation and execution."""

from repro.query.actions import (
    Action,
    AddEdge,
    AddNode,
    AddPattern,
    DeleteEdge,
    DeleteNode,
    MergeNodes,
    SetEdgeLabel,
    SetNodeLabel,
)
from repro.query.builder import QueryBuilder
from repro.query.similarity import (
    SimilarityMatch,
    SimilarityQueryEngine,
    query_relaxations,
)
from repro.query.suggest import QuerySuggester, Suggestion
from repro.query.engine import (
    GraphMatch,
    NetworkQueryEngine,
    QueryEngine,
    QueryResultSet,
)

__all__ = [
    "Action",
    "AddEdge",
    "AddNode",
    "AddPattern",
    "DeleteEdge",
    "DeleteNode",
    "MergeNodes",
    "SetEdgeLabel",
    "SetNodeLabel",
    "QueryBuilder",
    "QuerySuggester",
    "SimilarityMatch",
    "SimilarityQueryEngine",
    "query_relaxations",
    "Suggestion",
    "GraphMatch",
    "NetworkQueryEngine",
    "QueryEngine",
    "QueryResultSet",
]
