"""Visual query-formulation actions.

Every gesture a user can make in the Query Panel is one action.  The
action vocabulary follows the direct-manipulation VQIs the paper
surveys: node and edge creation with label assignment (edge-at-a-time
mode), dragging a whole pattern onto the canvas (pattern-at-a-time
mode), merging a pattern node with an existing query node to connect
the two, and deletions for error recovery.
"""

from __future__ import annotations

from repro.patterns.base import Pattern


class Action:
    """Base class; ``kind`` drives the usability time model."""

    kind = "abstract"

    def describe(self) -> str:
        return self.kind


class AddNode(Action):
    """Place a new node (optionally labeled in the same gesture)."""

    kind = "add_node"

    def __init__(self, label: str = "") -> None:
        self.label = label

    def describe(self) -> str:
        return f"add node {self.label!r}"


class AddEdge(Action):
    """Draw an edge between two existing query nodes."""

    kind = "add_edge"

    def __init__(self, u: int, v: int, label: str = "") -> None:
        self.u = u
        self.v = v
        self.label = label

    def describe(self) -> str:
        return f"add edge ({self.u}, {self.v}) {self.label!r}"


class SetNodeLabel(Action):
    """Relabel an existing query node (attribute-panel pick)."""

    kind = "set_node_label"

    def __init__(self, node: int, label: str) -> None:
        self.node = node
        self.label = label

    def describe(self) -> str:
        return f"label node {self.node} as {self.label!r}"


class SetEdgeLabel(Action):
    """Relabel an existing query edge."""

    kind = "set_edge_label"

    def __init__(self, u: int, v: int, label: str) -> None:
        self.u = u
        self.v = v
        self.label = label

    def describe(self) -> str:
        return f"label edge ({self.u}, {self.v}) as {self.label!r}"


class AddPattern(Action):
    """Drag a canned/basic pattern from the Pattern Panel onto the
    canvas — the single gesture that makes pattern-at-a-time mode
    cheaper than edge-at-a-time mode."""

    kind = "add_pattern"

    def __init__(self, pattern: Pattern) -> None:
        self.pattern = pattern

    def describe(self) -> str:
        return (f"drop pattern (n={self.pattern.order()}, "
                f"m={self.pattern.size()})")


class MergeNodes(Action):
    """Fuse two query nodes (connects a dropped pattern to the rest)."""

    kind = "merge_nodes"

    def __init__(self, keep: int, remove: int) -> None:
        self.keep = keep
        self.remove = remove

    def describe(self) -> str:
        return f"merge node {self.remove} into {self.keep}"


class DeleteNode(Action):
    """Remove a query node (error recovery)."""

    kind = "delete_node"

    def __init__(self, node: int) -> None:
        self.node = node

    def describe(self) -> str:
        return f"delete node {self.node}"


class DeleteEdge(Action):
    """Remove a query edge (error recovery)."""

    kind = "delete_edge"

    def __init__(self, u: int, v: int) -> None:
        self.u = u
        self.v = v

    def describe(self) -> str:
        return f"delete edge ({self.u}, {self.v})"
