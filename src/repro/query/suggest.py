"""Data-driven query auto-suggestion (VIIQ-style, paper §2.1).

Several surveyed VQIs auto-suggest the next query component while the
user draws.  The data-driven realisation is straightforward: mine the
frequencies of labeled edge types ``(label_u, edge_label, label_v)``
from the data once, then rank possible extensions of the node the
user selected by how often they occur.

The suggester works for both repositories and single networks, and
can optionally filter suggestions to those that keep the query
answerable (non-empty result set).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.matching.isomorphism import is_subgraph
from repro.query.builder import QueryBuilder

#: a suggestion: extend the anchor with (edge_label, new node label)
Suggestion = Tuple[str, str, int]


class QuerySuggester:
    """Ranks query extensions by their frequency in the data."""

    def __init__(self, data: Sequence[Graph]) -> None:
        if not data:
            raise GraphError("suggester needs at least one data graph")
        self.data = list(data)
        # (node label, edge label, neighbor label) -> occurrence count
        self._triples: Dict[Tuple[str, str, str], int] = {}
        for graph in self.data:
            for u, v in graph.edges():
                lu, lv = graph.node_label(u), graph.node_label(v)
                le = graph.edge_label(u, v)
                self._triples[(lu, le, lv)] = \
                    self._triples.get((lu, le, lv), 0) + 1
                if lu != lv:
                    self._triples[(lv, le, lu)] = \
                        self._triples.get((lv, le, lu), 0) + 1

    def triple_count(self, node_label: str, edge_label: str,
                     neighbor_label: str) -> int:
        return self._triples.get((node_label, edge_label,
                                  neighbor_label), 0)

    def suggest_extensions(self, node_label: str, top_k: int = 5
                           ) -> List[Suggestion]:
        """Most frequent (edge label, neighbor label) continuations
        of a node with the given label."""
        ranked = sorted(
            ((le, lv, count)
             for (lu, le, lv), count in self._triples.items()
             if lu == node_label),
            key=lambda item: (-item[2], item[0], item[1]))
        return ranked[:top_k]

    def suggest_for_query(self, builder: QueryBuilder, node: int,
                          top_k: int = 5,
                          answerable_only: bool = False
                          ) -> List[Suggestion]:
        """Extensions of a specific query node.

        With ``answerable_only`` each suggestion is verified: the
        extended query must still embed in at least one data graph
        (the expensive but frustration-free mode).
        """
        if not builder.query.has_node(node):
            raise GraphError(f"query has no node {node}")
        label = builder.query.node_label(node)
        candidates = self.suggest_extensions(label, top_k=top_k * 3
                                             if answerable_only
                                             else top_k)
        if not answerable_only:
            return candidates[:top_k]
        verified: List[Suggestion] = []
        for edge_label, neighbor_label, count in candidates:
            trial = builder.query.copy()
            fresh = max(trial.nodes(), default=-1) + 1
            trial.add_node(fresh, label=neighbor_label)
            trial.add_edge(node, fresh, label=edge_label)
            if any(is_subgraph(trial, graph) for graph in self.data):
                verified.append((edge_label, neighbor_label, count))
            if len(verified) >= top_k:
                break
        return verified

    def apply_suggestion(self, builder: QueryBuilder, node: int,
                         suggestion: Suggestion) -> int:
        """Materialise a suggestion; returns the new node's id."""
        edge_label, neighbor_label, _ = suggestion
        new_node = builder.add_node(neighbor_label)
        builder.add_edge(node, new_node, edge_label)
        return new_node

    def __repr__(self) -> str:
        return (f"<QuerySuggester graphs={len(self.data)} "
                f"triples={len(self._triples)}>")
