"""Subgraph query execution over repositories and networks.

The engine behind the Results Panel: given a visual query (a labeled
graph), find the repository graphs — or network regions — that match.
A node-label inverted index prunes the candidate graphs before the
VF2 search runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.matching.isomorphism import (
    WILDCARD,
    SubgraphMatcher,
    subgraph_embeddings,
)


class GraphMatch:
    """All retained embeddings of the query in one data graph."""

    __slots__ = ("graph_index", "graph", "embeddings")

    def __init__(self, graph_index: int, graph: Graph,
                 embeddings: List[Dict[int, int]]) -> None:
        self.graph_index = graph_index
        self.graph = graph
        self.embeddings = embeddings

    def __repr__(self) -> str:
        return (f"<GraphMatch graph={self.graph.name or self.graph_index} "
                f"embeddings={len(self.embeddings)}>")


class QueryResultSet:
    """Result of one query over a repository."""

    __slots__ = ("matches", "graphs_searched", "graphs_pruned")

    def __init__(self, matches: List[GraphMatch], graphs_searched: int,
                 graphs_pruned: int) -> None:
        self.matches = matches
        self.graphs_searched = graphs_searched
        self.graphs_pruned = graphs_pruned

    def match_count(self) -> int:
        return len(self.matches)

    def embedding_count(self) -> int:
        return sum(len(m.embeddings) for m in self.matches)

    def __repr__(self) -> str:
        return (f"<QueryResultSet graphs={self.match_count()} "
                f"embeddings={self.embedding_count()}>")


class QueryEngine:
    """Query a repository of (small/medium) data graphs."""

    def __init__(self, repository: Sequence[Graph]) -> None:
        self.repository = list(repository)
        # label -> indices of graphs containing >= 1 node with it,
        # built off each graph's interned compact label table (the
        # distinct labels, no per-node multiset materialisation)
        self._label_index: Dict[str, Set[int]] = {}
        for idx, graph in enumerate(self.repository):
            for label in graph.compact().node_labels:
                self._label_index.setdefault(label, set()).add(idx)

    def candidate_graphs(self, query: Graph) -> List[int]:
        """Indices of graphs containing every non-wildcard query label.

        The query's distinct labels come straight off its compact
        view's interned label table.  Labels intersect rarest-first:
        starting from the smallest posting set keeps every
        intermediate intersection no larger than the rarest label's,
        and a selective query short-circuits to [] the moment the
        running intersection empties instead of scanning its
        remaining (possibly huge) posting sets.
        """
        labels = set(query.compact().node_labels)
        labels.discard(WILDCARD)
        if not labels:  # all-wildcard query
            return sorted(range(len(self.repository)))
        # sort by posting-set size, label as tie-break for determinism
        ordered = sorted(labels,
                         key=lambda lab: (len(self._label_index.get(lab,
                                                                    ())),
                                          lab))
        candidates: Set[int] = set(self._label_index.get(ordered[0], ()))
        for label in ordered[1:]:
            if not candidates:
                return []
            candidates &= self._label_index.get(label, set())
        return sorted(candidates)

    def run(self, query: Graph, max_embeddings_per_graph: int = 10,
            max_matches: Optional[int] = None) -> QueryResultSet:
        """Execute a query; returns matches plus pruning statistics."""
        if query.order() == 0:
            raise GraphError("cannot execute an empty query")
        candidates = self.candidate_graphs(query)
        pruned = len(self.repository) - len(candidates)
        matches: List[GraphMatch] = []
        for idx in candidates:
            graph = self.repository[idx]
            embeddings = subgraph_embeddings(
                query, graph, max_results=max_embeddings_per_graph)
            if embeddings:
                matches.append(GraphMatch(idx, graph, embeddings))
                if max_matches is not None and len(matches) >= max_matches:
                    break
        return QueryResultSet(matches, graphs_searched=len(candidates),
                              graphs_pruned=pruned)


class NetworkQueryEngine:
    """Query a single large network."""

    def __init__(self, network: Graph) -> None:
        self.network = network

    def run(self, query: Graph,
            max_embeddings: int = 100) -> List[Dict[int, int]]:
        """Embeddings of the query in the network (capped)."""
        if query.order() == 0:
            raise GraphError("cannot execute an empty query")
        matcher = SubgraphMatcher(query, self.network)
        return list(matcher.iter_embeddings(max_results=max_embeddings))
