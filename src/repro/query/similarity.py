"""Subgraph similarity queries (paper §2.1).

The surveyed VQIs support more than exact subgraph matching — notably
*subgraph similarity* queries, where data graphs containing something
close to the drawn query still count.  This module implements the
standard edge-relaxation semantics: a graph matches with distance d
if some connected spanning relaxation of the query obtained by
deleting d edges embeds exactly.

Relaxations are enumerated smallest-d first and deduplicated by
canonical code, so results report the *minimum* relaxation distance.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import GraphError
from repro.graph.graph import Graph, edge_key
from repro.graph.operations import is_connected
from repro.matching.canonical import canonical_code
from repro.matching.isomorphism import find_embedding
from repro.query.engine import QueryEngine


def query_relaxations(query: Graph, max_missing: int
                      ) -> List[Tuple[int, Graph]]:
    """(distance, relaxed query) pairs, ordered by distance.

    A relaxation deletes up to ``max_missing`` edges but must stay
    connected and keep every query node (nodes the user drew are
    semantics, edges are the negotiable part).  Distance-0 is the
    query itself; isomorphic relaxations are deduplicated keeping the
    smallest distance.
    """
    if query.order() == 0:
        raise GraphError("cannot relax an empty query")
    if max_missing < 0:
        raise GraphError("max_missing must be >= 0")
    edges = [edge_key(u, v) for u, v in query.edges()]
    out: List[Tuple[int, Graph]] = [(0, query)]
    seen: Set[str] = {canonical_code(query)}
    for d in range(1, min(max_missing, len(edges)) + 1):
        for removed in combinations(edges, d):
            relaxed = query.copy()
            for u, v in removed:
                relaxed.remove_edge(u, v)
            if any(relaxed.degree(v) == 0 for v in relaxed.nodes()):
                continue  # an isolated node loses the user's intent
            if not is_connected(relaxed):
                continue
            code = canonical_code(relaxed)
            if code in seen:
                continue
            seen.add(code)
            out.append((d, relaxed))
    return out


class SimilarityMatch:
    """One data graph matched at its minimum relaxation distance."""

    __slots__ = ("graph_index", "graph", "distance", "embedding")

    def __init__(self, graph_index: int, graph: Graph, distance: int,
                 embedding: Dict[int, int]) -> None:
        self.graph_index = graph_index
        self.graph = graph
        self.distance = distance
        self.embedding = embedding

    def __repr__(self) -> str:
        return (f"<SimilarityMatch "
                f"{self.graph.name or self.graph_index} "
                f"d={self.distance}>")


class SimilarityQueryEngine:
    """Similarity search over a repository of data graphs."""

    def __init__(self, repository: Sequence[Graph]) -> None:
        self.repository = list(repository)
        self._exact = QueryEngine(repository)

    def run(self, query: Graph, max_missing: int = 1,
            max_matches: Optional[int] = None) -> List[SimilarityMatch]:
        """Graphs matching within ``max_missing`` deleted query edges.

        Results are sorted by distance then graph index; each graph
        appears once, at its minimum distance.
        """
        relaxations = query_relaxations(query, max_missing)
        matched: Dict[int, SimilarityMatch] = {}
        for distance, relaxed in relaxations:
            candidates = self._exact.candidate_graphs(relaxed)
            for idx in candidates:
                if idx in matched:
                    continue  # already matched at a smaller distance
                embedding = find_embedding(relaxed,
                                           self.repository[idx])
                if embedding is not None:
                    matched[idx] = SimilarityMatch(
                        idx, self.repository[idx], distance, embedding)
        results = sorted(matched.values(),
                         key=lambda m: (m.distance, m.graph_index))
        if max_matches is not None:
            results = results[:max_matches]
        return results

    def distance_histogram(self, query: Graph, max_missing: int = 2
                           ) -> Dict[int, int]:
        """How many graphs match at each minimum distance."""
        histogram: Dict[int, int] = {}
        for match in self.run(query, max_missing=max_missing):
            histogram[match.distance] = histogram.get(match.distance,
                                                      0) + 1
        return histogram
