"""Query assembly from visual actions.

The :class:`QueryBuilder` is the model behind the Query Panel: it
applies :mod:`repro.query.actions` one at a time, maintains the query
graph, and keeps the action history the usability metrics count.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.patterns.base import Pattern
from repro.query.actions import (
    Action,
    AddEdge,
    AddNode,
    AddPattern,
    DeleteEdge,
    DeleteNode,
    MergeNodes,
    SetEdgeLabel,
    SetNodeLabel,
)


class QueryBuilder:
    """Mutable visual query with an action log."""

    def __init__(self) -> None:
        self.query = Graph(name="query")
        self.history: List[Action] = []
        self._next_id = 0

    # -- single-action interface ---------------------------------------
    def apply(self, action: Action) -> Optional[object]:
        """Apply one action; returns action-specific results
        (the new node id for AddNode, the id mapping for AddPattern)."""
        result: Optional[object] = None
        if isinstance(action, AddNode):
            result = self._add_node(action.label)
        elif isinstance(action, AddEdge):
            self.query.add_edge(action.u, action.v, label=action.label)
        elif isinstance(action, SetNodeLabel):
            self.query.set_node_label(action.node, action.label)
        elif isinstance(action, SetEdgeLabel):
            self.query.set_edge_label(action.u, action.v, action.label)
        elif isinstance(action, AddPattern):
            result = self._add_pattern(action.pattern)
        elif isinstance(action, MergeNodes):
            self._merge_nodes(action.keep, action.remove)
        elif isinstance(action, DeleteNode):
            self.query.remove_node(action.node)
        elif isinstance(action, DeleteEdge):
            self.query.remove_edge(action.u, action.v)
        else:
            raise GraphError(f"unknown action {action!r}")
        self.history.append(action)
        return result

    # -- convenience wrappers -------------------------------------------
    def add_node(self, label: str = "") -> int:
        return self.apply(AddNode(label))  # type: ignore[return-value]

    def add_edge(self, u: int, v: int, label: str = "") -> None:
        self.apply(AddEdge(u, v, label))

    def add_pattern(self, pattern: Pattern) -> Dict[int, int]:
        """Drop a pattern; returns pattern-node -> query-node mapping."""
        return self.apply(AddPattern(pattern))  # type: ignore[return-value]

    def merge_nodes(self, keep: int, remove: int) -> None:
        self.apply(MergeNodes(keep, remove))

    # -- internals --------------------------------------------------------
    def _add_node(self, label: str) -> int:
        node = self._next_id
        self._next_id += 1
        self.query.add_node(node, label=label)
        return node

    def _add_pattern(self, pattern: Pattern) -> Dict[int, int]:
        mapping: Dict[int, int] = {}
        for u in sorted(pattern.graph.nodes()):
            mapping[u] = self._add_node(pattern.graph.node_label(u))
        for u, v in pattern.graph.edges():
            self.query.add_edge(mapping[u], mapping[v],
                                label=pattern.graph.edge_label(u, v))
        return mapping

    def _merge_nodes(self, keep: int, remove: int) -> None:
        if keep == remove:
            raise GraphError("cannot merge a node with itself")
        if not self.query.has_node(keep):
            raise GraphError(f"merge target {keep} not in query")
        if not self.query.has_node(remove):
            raise GraphError(f"merge source {remove} not in query")
        for nbr in list(self.query.neighbors(remove)):
            if nbr != keep and not self.query.has_edge(keep, nbr):
                self.query.add_edge(keep, nbr,
                                    label=self.query.edge_label(remove,
                                                                nbr))
        self.query.remove_node(remove)

    # -- metrics ------------------------------------------------------------
    def step_count(self) -> int:
        """Number of atomic actions performed so far."""
        return len(self.history)

    def action_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for action in self.history:
            counts[action.kind] = counts.get(action.kind, 0) + 1
        return counts

    def __repr__(self) -> str:
        return (f"<QueryBuilder n={self.query.order()} "
                f"m={self.query.size()} steps={self.step_count()}>")
