"""Portable, serializable VQI specification.

The portability argument for data-driven VQIs (paper §2.2) is that
the *data-dependent* interface content — attribute alphabets and the
pattern panel — can be generated for any source and shipped as plain
data.  :class:`VQISpec` is that shippable artifact: a JSON document a
front-end can render without any knowledge of how the patterns were
selected.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import FormatError
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.patterns.base import Pattern, PatternBudget, PatternSet
from repro.vqi.panels import AttributePanel, PatternPanel

SPEC_VERSION = 1


class VQISpec:
    """Everything needed to render a data-driven VQI."""

    def __init__(self, source: str, generator: str,
                 attribute_panel: AttributePanel,
                 pattern_panel: PatternPanel) -> None:
        self.source = source
        self.generator = generator
        self.attribute_panel = attribute_panel
        self.pattern_panel = pattern_panel

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": SPEC_VERSION,
            "source": self.source,
            "generator": self.generator,
            "attributes": {
                "node_labels": self.attribute_panel.node_labels,
                "edge_labels": self.attribute_panel.edge_labels,
            },
            "budget": {
                "max_patterns": self.pattern_panel.budget.max_patterns,
                "min_size": self.pattern_panel.budget.min_size,
                "max_size": self.pattern_panel.budget.max_size,
            },
            "basic_patterns": [
                {"source": p.source, "graph": graph_to_dict(p.graph)}
                for p in self.pattern_panel.basic],
            "canned_patterns": [
                {"source": p.source, "graph": graph_to_dict(p.graph)}
                for p in self.pattern_panel.canned],
        }

    def to_json(self, indent: int = 0) -> str:
        return json.dumps(self.to_dict(), indent=indent or None)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VQISpec":
        try:
            if data["version"] != SPEC_VERSION:
                raise FormatError(
                    f"unsupported VQI spec version {data['version']!r}")
            attribute_panel = AttributePanel(
                data["attributes"]["node_labels"],
                data["attributes"]["edge_labels"])
            budget = PatternBudget(
                data["budget"]["max_patterns"],
                min_size=data["budget"]["min_size"],
                max_size=data["budget"]["max_size"])
            basic = [Pattern(graph_from_dict(item["graph"]),
                             source=item.get("source", ""))
                     for item in data["basic_patterns"]]
            canned = PatternSet(
                Pattern(graph_from_dict(item["graph"]),
                        source=item.get("source", ""))
                for item in data["canned_patterns"])
        except (KeyError, TypeError) as exc:
            raise FormatError(f"malformed VQI spec: {exc}") from exc
        pattern_panel = PatternPanel(basic, canned, budget)
        return cls(data.get("source", ""), data.get("generator", ""),
                   attribute_panel, pattern_panel)

    @classmethod
    def from_json(cls, text: str) -> "VQISpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FormatError(f"invalid VQI spec JSON: {exc}") from exc
        return cls.from_dict(data)

    def __repr__(self) -> str:
        return (f"<VQISpec source={self.source!r} "
                f"generator={self.generator!r} "
                f"canned={len(self.pattern_panel.canned)}>")
