"""Force-directed graph layout for pattern and result rendering.

A small, deterministic Fruchterman–Reingold implementation (numpy)
that the aesthetics metrics and the SVG renderer both consume.
Positions are normalised to the unit square.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Tuple

import numpy as np

from repro.graph.graph import Graph

Position = Tuple[float, float]


def circular_layout(graph: Graph) -> Dict[int, Position]:
    """Nodes evenly spaced on a circle (deterministic fallback)."""
    nodes = sorted(graph.nodes())
    n = len(nodes)
    if n == 0:
        return {}
    if n == 1:
        return {nodes[0]: (0.5, 0.5)}
    return {
        node: (0.5 + 0.45 * math.cos(2 * math.pi * i / n),
               0.5 + 0.45 * math.sin(2 * math.pi * i / n))
        for i, node in enumerate(nodes)
    }


def spring_layout(graph: Graph, iterations: int = 120,
                  seed: int = 0) -> Dict[int, Position]:
    """Fruchterman–Reingold layout normalised to the unit square."""
    nodes = sorted(graph.nodes())
    n = len(nodes)
    if n == 0:
        return {}
    if n == 1:
        return {nodes[0]: (0.5, 0.5)}
    index = {node: i for i, node in enumerate(nodes)}
    rng = random.Random(seed)
    pos = np.array([[rng.random(), rng.random()] for _ in nodes])
    k = 1.0 / math.sqrt(n)  # ideal edge length
    temperature = 0.12
    cooling = temperature / (iterations + 1)
    edges = [(index[u], index[v]) for u, v in graph.edges()]
    for _ in range(iterations):
        delta = pos[:, None, :] - pos[None, :, :]
        distance = np.linalg.norm(delta, axis=-1)
        np.fill_diagonal(distance, 1e-9)
        distance = np.maximum(distance, 1e-9)
        # repulsion between every pair
        force = (k * k / distance ** 2)[..., None] * delta
        displacement = force.sum(axis=1)
        # attraction along edges
        for i, j in edges:
            diff = pos[i] - pos[j]
            dist = max(float(np.linalg.norm(diff)), 1e-9)
            pull = (dist / k) * (diff / dist)
            displacement[i] -= pull
            displacement[j] += pull
        lengths = np.linalg.norm(displacement, axis=1)
        lengths = np.maximum(lengths, 1e-9)
        capped = (displacement / lengths[:, None]) * \
            np.minimum(lengths, temperature)[:, None]
        pos += capped
        temperature = max(temperature - cooling, 1e-4)
    # normalise into [0.05, 0.95]^2
    mins = pos.min(axis=0)
    spans = np.maximum(pos.max(axis=0) - mins, 1e-9)
    pos = 0.05 + 0.9 * (pos - mins) / spans
    return {node: (float(pos[index[node]][0]), float(pos[index[node]][1]))
            for node in nodes}


def layout_graph(graph: Graph, seed: int = 0) -> Dict[int, Position]:
    """Default layout: spring for n >= 3, circle otherwise."""
    if graph.order() < 3:
        return circular_layout(graph)
    return spring_layout(graph, seed=seed)
