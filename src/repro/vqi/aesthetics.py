"""Aesthetic / visual-complexity metrics for VQI layouts (paper §2.5).

Implements the metric families HCI work quantifies interface
aesthetics with — edge crossings, node congestion, angular
resolution, visual clutter, contour congestion — plus Berlyne's
inverted-U model relating visual complexity to user satisfaction,
which experiment E9 reproduces.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Dict, List, Sequence, Tuple

from repro.graph.graph import Graph
from repro.vqi.layout import Position, layout_graph


def _segments_cross(p1: Position, p2: Position, p3: Position,
                    p4: Position) -> bool:
    """Proper intersection of open segments (shared endpoints ignored)."""

    def orient(a: Position, b: Position, c: Position) -> float:
        return ((b[0] - a[0]) * (c[1] - a[1])
                - (b[1] - a[1]) * (c[0] - a[0]))

    if len({p1, p2, p3, p4}) < 4:
        return False
    d1 = orient(p3, p4, p1)
    d2 = orient(p3, p4, p2)
    d3 = orient(p1, p2, p3)
    d4 = orient(p1, p2, p4)
    return (d1 * d2 < 0) and (d3 * d4 < 0)


def edge_crossings(graph: Graph,
                   positions: Dict[int, Position]) -> int:
    """Number of pairwise edge crossings in the layout."""
    edges = list(graph.edges())
    crossings = 0
    for (u1, v1), (u2, v2) in combinations(edges, 2):
        if len({u1, v1, u2, v2}) < 4:
            continue  # edges sharing a node cannot properly cross
        if _segments_cross(positions[u1], positions[v1],
                           positions[u2], positions[v2]):
            crossings += 1
    return crossings


def node_congestion(graph: Graph, positions: Dict[int, Position],
                    radius: float = 0.08) -> float:
    """Fraction of node pairs closer than ``radius`` (overlap proxy)."""
    nodes = sorted(graph.nodes())
    if len(nodes) < 2:
        return 0.0
    close = 0
    pairs = 0
    for u, v in combinations(nodes, 2):
        pairs += 1
        dx = positions[u][0] - positions[v][0]
        dy = positions[u][1] - positions[v][1]
        if math.hypot(dx, dy) < radius:
            close += 1
    return close / pairs


def angular_resolution(graph: Graph,
                       positions: Dict[int, Position]) -> float:
    """Mean (over nodes with degree >= 2) of the minimum angle between
    incident edges, in radians; larger is easier to read."""
    total = 0.0
    counted = 0
    for u in graph.nodes():
        nbrs = sorted(graph.neighbors(u))
        if len(nbrs) < 2:
            continue
        angles = sorted(
            math.atan2(positions[v][1] - positions[u][1],
                       positions[v][0] - positions[u][0])
            for v in nbrs)
        gaps = [angles[i + 1] - angles[i] for i in range(len(angles) - 1)]
        gaps.append(2 * math.pi - (angles[-1] - angles[0]))
        total += min(gaps)
        counted += 1
    return total / counted if counted else math.pi


def visual_clutter(graph: Graph, grid: int = 4,
                   positions: Dict[int, Position] | None = None,
                   seed: int = 0) -> float:
    """Feature-congestion clutter proxy: mean squared cell occupancy.

    The unit square is divided into ``grid x grid`` cells; each node
    and each edge midpoint occupies a cell.  Uneven, crowded cells
    (squared counts) read as clutter.
    """
    positions = positions or layout_graph(graph, seed=seed)
    if not positions:
        return 0.0
    cells: Dict[Tuple[int, int], int] = {}

    def drop(x: float, y: float) -> None:
        cx = min(int(x * grid), grid - 1)
        cy = min(int(y * grid), grid - 1)
        cells[(cx, cy)] = cells.get((cx, cy), 0) + 1

    for node, (x, y) in positions.items():
        drop(x, y)
    for u, v in graph.edges():
        drop((positions[u][0] + positions[v][0]) / 2,
             (positions[u][1] + positions[v][1]) / 2)
    total_items = graph.order() + graph.size()
    if total_items == 0:
        return 0.0
    return sum(c * c for c in cells.values()) / (total_items ** 2)


def contour_congestion(graph: Graph,
                       positions: Dict[int, Position] | None = None,
                       threshold: float = 0.05,
                       seed: int = 0) -> float:
    """Fraction of edge pairs whose midpoints are nearly coincident —
    a proxy for contours that are hard to tell apart."""
    positions = positions or layout_graph(graph, seed=seed)
    edges = list(graph.edges())
    if len(edges) < 2:
        return 0.0
    mids = [((positions[u][0] + positions[v][0]) / 2,
             (positions[u][1] + positions[v][1]) / 2) for u, v in edges]
    close = 0
    pairs = 0
    for m1, m2 in combinations(mids, 2):
        pairs += 1
        if math.hypot(m1[0] - m2[0], m1[1] - m2[1]) < threshold:
            close += 1
    return close / pairs


def layout_quality(graph: Graph,
                   positions: Dict[int, Position] | None = None,
                   seed: int = 0) -> float:
    """Composite layout quality in [0, 1]: fewer crossings, less
    congestion, wider angles -> higher quality."""
    positions = positions or layout_graph(graph, seed=seed)
    if graph.order() == 0:
        return 1.0
    m = graph.size()
    max_crossings = max(m * (m - 1) / 2, 1.0)
    crossing_term = 1.0 - edge_crossings(graph, positions) / max_crossings
    congestion_term = 1.0 - node_congestion(graph, positions)
    angle_term = angular_resolution(graph, positions) / math.pi
    return max(0.0, min(1.0,
                        0.5 * crossing_term + 0.3 * congestion_term
                        + 0.2 * angle_term))


def visual_complexity(graph: Graph,
                      positions: Dict[int, Position] | None = None,
                      seed: int = 0) -> float:
    """Overall visual complexity of one displayed graph, in [0, 1).

    Combines structural size/density with layout-level clutter — the
    quantity Berlyne's inverted-U relates to pleasantness.
    """
    positions = positions or layout_graph(graph, seed=seed)
    structural = 1.0 - math.exp(-(graph.size() / 10.0)
                                * (0.5 + graph.density()))
    clutter = visual_clutter(graph, positions=positions)
    crossings = edge_crossings(graph, positions)
    crossing_load = 1.0 - math.exp(-crossings / 4.0)
    return max(0.0, min(0.999,
                        0.5 * structural + 0.25 * clutter
                        + 0.25 * crossing_load))


#: Berlyne inverted-U parameters: satisfaction peaks at moderate
#: complexity (c*) and falls off symmetrically with width sigma.
BERLYNE_OPTIMUM = 0.45
BERLYNE_WIDTH = 0.25


def berlyne_satisfaction(complexity: float,
                         optimum: float = BERLYNE_OPTIMUM,
                         width: float = BERLYNE_WIDTH) -> float:
    """Inverted-U (Gaussian) satisfaction of a stimulus, in (0, 1]."""
    return math.exp(-((complexity - optimum) ** 2) / (2 * width * width))


def panel_aesthetics(graphs: Sequence[Graph],
                     seed: int = 0) -> Dict[str, float]:
    """Aggregate aesthetics of a panel displaying several graphs."""
    if not graphs:
        return {"visual_complexity": 0.0, "layout_quality": 1.0,
                "satisfaction": berlyne_satisfaction(0.0),
                "crossings": 0.0}
    complexities: List[float] = []
    qualities: List[float] = []
    crossings: List[float] = []
    for i, graph in enumerate(graphs):
        positions = layout_graph(graph, seed=seed + i)
        complexities.append(visual_complexity(graph, positions))
        qualities.append(layout_quality(graph, positions))
        crossings.append(float(edge_crossings(graph, positions)))
    mean_complexity = sum(complexities) / len(complexities)
    return {
        "visual_complexity": mean_complexity,
        "layout_quality": sum(qualities) / len(qualities),
        "satisfaction": berlyne_satisfaction(mean_complexity),
        "crossings": sum(crossings) / len(crossings),
    }
