"""Data-driven VQI construction facade (the library's front door).

``build_vqi`` takes *data* — a repository of small graphs or one
large network — and a display budget, and returns a fully-populated
:class:`VisualQueryInterface`: attribute alphabets traversed from the
data, basic patterns, canned patterns selected by CATAPULT (for
repositories) or TATTOO (for networks), a query canvas, and a live
query engine feeding the results panel.  The same call works on any
data source: that is the portability claim of the data-driven
paradigm (paper §2.2).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Union

from repro.catapult.pipeline import CatapultConfig, _run_catapult
from repro.errors import PipelineError
from repro.graph.graph import Graph
from repro.graph.operations import edge_subgraph
from repro.patterns.base import PatternBudget
from repro.patterns.basic import default_basic_patterns
from repro.query.engine import (
    GraphMatch,
    NetworkQueryEngine,
    QueryEngine,
    QueryResultSet,
)
from repro.tattoo.pipeline import TattooConfig, _run_tattoo
from repro.vqi.panels import (
    AttributePanel,
    PatternPanel,
    QueryPanel,
    ResultsPanel,
)
from repro.vqi.render import render_pattern_panel_svg
from repro.vqi.spec import VQISpec

DataSource = Union[Graph, Sequence[Graph]]


class VisualQueryInterface:
    """A live, headless VQI bound to its data source."""

    def __init__(self, spec: VQISpec,
                 repository: Optional[Sequence[Graph]] = None,
                 network: Optional[Graph] = None) -> None:
        if (repository is None) == (network is None):
            raise PipelineError(
                "bind a VQI to either a repository or a network")
        self.spec = spec
        self.attribute_panel = spec.attribute_panel
        self.pattern_panel = spec.pattern_panel
        self.query_panel = QueryPanel()
        self.results_panel = ResultsPanel()
        self.repository = list(repository) if repository is not None \
            else None
        self.network = network
        self._engine = (QueryEngine(self.repository)
                        if self.repository is not None
                        else NetworkQueryEngine(network))

    # -- querying -----------------------------------------------------------
    def execute(self, max_embeddings: int = 10) -> QueryResultSet:
        """Run the current query and populate the Results Panel."""
        query = self.query_panel.query
        if self.repository is not None:
            results = self._engine.run(
                query, max_embeddings_per_graph=max_embeddings)
        else:
            embeddings = self._engine.run(query,
                                          max_embeddings=max_embeddings)
            matches: List[GraphMatch] = []
            for i, mapping in enumerate(embeddings):
                edges = [(mapping[u], mapping[v])
                         for u, v in query.edges()]
                matched = edge_subgraph(self.network, edges,
                                        name=f"match{i}")
                matches.append(GraphMatch(i, matched, [mapping]))
            results = QueryResultSet(matches, graphs_searched=1,
                                     graphs_pruned=0)
        self.results_panel.show(results)
        return results

    def reset_query(self) -> None:
        self.query_panel.reset()

    # -- rendering ------------------------------------------------------------
    def render_pattern_panel(self, columns: int = 4, seed: int = 0) -> str:
        """SVG of the Pattern Panel (basic + canned)."""
        return render_pattern_panel_svg(self.pattern_panel.all_patterns(),
                                        columns=columns, seed=seed)

    def __repr__(self) -> str:
        kind = "repository" if self.repository is not None else "network"
        return (f"<VisualQueryInterface {kind} "
                f"canned={len(self.pattern_panel.canned)}>")


class BuildReport:
    """Provenance of one build (per-stage timings, generator used).

    ``trace`` carries the selection pipeline's :mod:`repro.obs` span
    record when the pipeline config asked for one (``None`` otherwise).
    ``degraded``/``completion`` surface the pipeline's anytime status:
    a build that ran out of deadline or skipped faulty work still
    returns a usable VQI, flagged here (see DESIGN.md, "Resilience").
    """

    __slots__ = ("generator", "duration", "details", "trace",
                 "degraded", "completion")

    def __init__(self, generator: str, duration: float,
                 details: Dict[str, float],
                 trace: Optional[Dict[str, object]] = None,
                 degraded: bool = False,
                 completion: Optional[Dict[str, Dict[str, object]]]
                 = None) -> None:
        self.generator = generator
        self.duration = duration
        self.details = details
        self.trace = trace
        self.degraded = degraded
        self.completion = completion or {}

    def __repr__(self) -> str:
        flag = " degraded" if self.degraded else ""
        return (f"<BuildReport {self.generator} "
                f"{self.duration:.2f}s{flag}>")


def build_vqi(data: DataSource, budget: PatternBudget,
              catapult_config: Optional[CatapultConfig] = None,
              tattoo_config: Optional[TattooConfig] = None,
              source_name: str = "") -> VisualQueryInterface:
    """Build a data-driven VQI from any graph data source.

    A single :class:`repro.graph.Graph` is treated as a large network
    (TATTOO); a sequence of graphs as a repository (CATAPULT).
    """
    vqi, _ = build_vqi_with_report(data, budget,
                                   catapult_config=catapult_config,
                                   tattoo_config=tattoo_config,
                                   source_name=source_name)
    return vqi


def build_vqi_with_report(data: DataSource, budget: PatternBudget,
                          catapult_config: Optional[CatapultConfig] = None,
                          tattoo_config: Optional[TattooConfig] = None,
                          source_name: str = ""
                          ) -> tuple[VisualQueryInterface, BuildReport]:
    """Like :func:`build_vqi`, also returning build provenance."""
    start = time.perf_counter()
    if isinstance(data, Graph):
        attribute_panel = AttributePanel.from_network(data)
        result = _run_tattoo(data, budget,
                             tattoo_config or TattooConfig())
        canned = result.patterns
        generator = "tattoo"
        timings = dict(result.timings)
        repository = None
        network = data
        source = source_name or data.name or "network"
    else:
        repository = list(data)
        if not repository:
            raise PipelineError("cannot build a VQI from no data")
        attribute_panel = AttributePanel.from_repository(repository)
        result = _run_catapult(
            repository, budget, catapult_config or CatapultConfig())
        canned = result.patterns
        generator = "catapult"
        timings = dict(result.timings)
        network = None
        source = source_name or "repository"

    pattern_panel = PatternPanel(default_basic_patterns(), canned, budget)
    spec = VQISpec(source, generator, attribute_panel, pattern_panel)
    vqi = VisualQueryInterface(spec, repository=repository,
                               network=network)
    report = BuildReport(generator, time.perf_counter() - start, timings,
                         trace=result.trace,
                         degraded=result.degraded,
                         completion=result.completion.as_dict())
    return vqi, report
