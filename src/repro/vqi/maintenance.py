"""Keeping a live VQI consistent with an evolving repository.

Binds a :class:`repro.midas.Midas` maintainer to a
:class:`repro.vqi.VisualQueryInterface`: applying an update batch
refreshes the attribute alphabets, swaps the maintained canned
patterns into the Pattern Panel, and rebinds the query engine to the
updated repository.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.datasets.evolving import UpdateBatch
from repro.errors import PipelineError
from repro.midas.maintenance import MaintenanceReport, Midas, MidasConfig
from repro.patterns.base import PatternBudget
from repro.query.engine import QueryEngine
from repro.vqi.builder import VisualQueryInterface
from repro.vqi.panels import AttributePanel, PatternPanel
from repro.vqi.spec import VQISpec


class MaintainedVQI:
    """A repository VQI paired with its MIDAS maintainer."""

    def __init__(self, vqi: VisualQueryInterface,
                 config: Optional[MidasConfig] = None) -> None:
        if vqi.repository is None:
            raise PipelineError(
                "MIDAS maintenance applies to repository VQIs only")
        self.vqi = vqi
        self.midas = Midas._from_parts(vqi.repository,
                                       vqi.pattern_panel.budget, config)
        # adopt the maintainer's (FCT-vocabulary) initial selection so
        # panel and maintainer state agree from the start
        self._sync()
        self.reports: List[MaintenanceReport] = []

    def _sync(self) -> None:
        vqi = self.vqi
        repository = self.midas.graphs()
        vqi.repository = repository
        vqi._engine = QueryEngine(repository)
        attribute_panel = AttributePanel.from_repository(repository)
        pattern_panel = PatternPanel(vqi.pattern_panel.basic,
                                     self.midas.patterns,
                                     vqi.pattern_panel.budget)
        vqi.attribute_panel = attribute_panel
        vqi.pattern_panel = pattern_panel
        vqi.spec = VQISpec(vqi.spec.source, "catapult+midas",
                           attribute_panel, pattern_panel)

    def apply_batch(self, batch: UpdateBatch) -> MaintenanceReport:
        """Apply one repository update batch and refresh the VQI."""
        report = self.midas.apply_batch(batch)
        self._sync()
        self.reports.append(report)
        return report

    def __repr__(self) -> str:
        return (f"<MaintainedVQI batches={len(self.reports)} "
                f"canned={len(self.midas.patterns)}>")


def build_maintained_vqi(repository: Sequence, budget: PatternBudget,
                         midas_config: Optional[MidasConfig] = None
                         ) -> MaintainedVQI:
    """One-call construction of a VQI with maintenance attached."""
    from repro.vqi.builder import build_vqi
    vqi = build_vqi(list(repository), budget)
    return MaintainedVQI(vqi, config=midas_config)
