"""Headless visual query interface: panels, spec, builder, aesthetics."""

from repro.vqi.aesthetics import (
    BERLYNE_OPTIMUM,
    BERLYNE_WIDTH,
    angular_resolution,
    berlyne_satisfaction,
    contour_congestion,
    edge_crossings,
    layout_quality,
    node_congestion,
    panel_aesthetics,
    visual_clutter,
    visual_complexity,
)
from repro.vqi.builder import (
    BuildReport,
    VisualQueryInterface,
    build_vqi,
    build_vqi_with_report,
)
from repro.vqi.diff import SpecDiff, spec_diff
from repro.vqi.layout import circular_layout, layout_graph, spring_layout
from repro.vqi.maintenance import MaintainedVQI, build_maintained_vqi
from repro.vqi.optimize import (
    LayoutObjective,
    arrange_panel,
    layout_cost,
    optimize_layout,
    panel_scan_cost,
)
from repro.vqi.panels import (
    AttributePanel,
    PatternPanel,
    QueryPanel,
    ResultsPanel,
)
from repro.vqi.render import render_graph_svg, render_pattern_panel_svg
from repro.vqi.results import (
    ResultGroup,
    group_results,
    render_results_panel_svg,
    results_complexity_reduction,
)
from repro.vqi.spec import SPEC_VERSION, VQISpec

__all__ = [
    "BERLYNE_OPTIMUM",
    "BERLYNE_WIDTH",
    "angular_resolution",
    "berlyne_satisfaction",
    "contour_congestion",
    "edge_crossings",
    "layout_quality",
    "node_congestion",
    "panel_aesthetics",
    "visual_clutter",
    "visual_complexity",
    "BuildReport",
    "VisualQueryInterface",
    "build_vqi",
    "build_vqi_with_report",
    "SpecDiff",
    "spec_diff",
    "circular_layout",
    "layout_graph",
    "spring_layout",
    "MaintainedVQI",
    "build_maintained_vqi",
    "LayoutObjective",
    "arrange_panel",
    "layout_cost",
    "optimize_layout",
    "panel_scan_cost",
    "AttributePanel",
    "PatternPanel",
    "QueryPanel",
    "ResultsPanel",
    "render_graph_svg",
    "render_pattern_panel_svg",
    "ResultGroup",
    "group_results",
    "render_results_panel_svg",
    "results_complexity_reduction",
    "SPEC_VERSION",
    "VQISpec",
]
