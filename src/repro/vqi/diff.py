"""Diffing VQI specs across maintenance events.

Operators of a maintained VQI want to see *what changed* when MIDAS
(or the network maintainer) refreshed the interface: which canned
patterns were swapped in or out, and how the attribute alphabets
moved.  :func:`spec_diff` computes that, comparing patterns by
isomorphism class so node renumbering never reads as a change.
"""

from __future__ import annotations

from typing import Dict, List

from repro.patterns.base import Pattern
from repro.vqi.spec import VQISpec


class SpecDiff:
    """Difference between two VQI specs (old -> new)."""

    __slots__ = ("added_patterns", "removed_patterns",
                 "kept_patterns", "added_node_labels",
                 "removed_node_labels", "added_edge_labels",
                 "removed_edge_labels", "generator_changed")

    def __init__(self, added_patterns: List[Pattern],
                 removed_patterns: List[Pattern],
                 kept_patterns: List[Pattern],
                 added_node_labels: List[str],
                 removed_node_labels: List[str],
                 added_edge_labels: List[str],
                 removed_edge_labels: List[str],
                 generator_changed: bool) -> None:
        self.added_patterns = added_patterns
        self.removed_patterns = removed_patterns
        self.kept_patterns = kept_patterns
        self.added_node_labels = added_node_labels
        self.removed_node_labels = removed_node_labels
        self.added_edge_labels = added_edge_labels
        self.removed_edge_labels = removed_edge_labels
        self.generator_changed = generator_changed

    def is_empty(self) -> bool:
        """True iff the two specs present the same interface."""
        return not (self.added_patterns or self.removed_patterns
                    or self.added_node_labels
                    or self.removed_node_labels
                    or self.added_edge_labels
                    or self.removed_edge_labels
                    or self.generator_changed)

    def pattern_churn(self) -> float:
        """Fraction of the new panel that is new, in [0, 1]."""
        total = len(self.added_patterns) + len(self.kept_patterns)
        if total == 0:
            return 0.0
        return len(self.added_patterns) / total

    def summary(self) -> str:
        """One-line human-readable description."""
        if self.is_empty():
            return "no changes"
        parts = []
        if self.added_patterns:
            parts.append(f"+{len(self.added_patterns)} patterns")
        if self.removed_patterns:
            parts.append(f"-{len(self.removed_patterns)} patterns")
        if self.added_node_labels:
            parts.append(f"+labels {sorted(self.added_node_labels)}")
        if self.removed_node_labels:
            parts.append(f"-labels {sorted(self.removed_node_labels)}")
        if self.added_edge_labels or self.removed_edge_labels:
            parts.append("edge-label changes")
        if self.generator_changed:
            parts.append("generator changed")
        return ", ".join(parts)

    def __repr__(self) -> str:
        return f"<SpecDiff {self.summary()}>"


def spec_diff(old: VQISpec, new: VQISpec) -> SpecDiff:
    """Compare two specs; patterns match by isomorphism class."""
    old_by_code: Dict[str, Pattern] = {p.code: p
                                       for p in old.pattern_panel.canned}
    new_by_code: Dict[str, Pattern] = {p.code: p
                                       for p in new.pattern_panel.canned}
    added = [p for code, p in new_by_code.items()
             if code not in old_by_code]
    removed = [p for code, p in old_by_code.items()
               if code not in new_by_code]
    kept = [p for code, p in new_by_code.items() if code in old_by_code]

    old_nodes = set(old.attribute_panel.node_labels)
    new_nodes = set(new.attribute_panel.node_labels)
    old_edges = set(old.attribute_panel.edge_labels)
    new_edges = set(new.attribute_panel.edge_labels)

    return SpecDiff(
        added_patterns=added,
        removed_patterns=removed,
        kept_patterns=kept,
        added_node_labels=sorted(new_nodes - old_nodes),
        removed_node_labels=sorted(old_nodes - new_nodes),
        added_edge_labels=sorted(new_edges - old_edges),
        removed_edge_labels=sorted(old_edges - new_edges),
        generator_changed=old.generator != new.generator)
