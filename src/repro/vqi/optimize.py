"""Aesthetics-aware layout optimization (paper §2.5, future work).

The tutorial poses the open problem of generating VQI layouts by
*optimizing* aesthetic metrics instead of hand-tuning them.  This
module implements that direction twice over:

* :func:`optimize_layout` — simulated annealing over node positions,
  minimizing a weighted aesthetics objective (edge crossings, node
  congestion, narrow angles, uneven edge lengths), seeded from the
  spring layout;
* :func:`arrange_panel` — orders a Pattern Panel so that visual
  complexity ramps up gradually (simple anchors first), which lowers
  the extraneous cognitive load of scanning the panel.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

from repro.graph.graph import Graph
from repro.patterns.base import Pattern
from repro.vqi.aesthetics import (
    angular_resolution,
    edge_crossings,
    node_congestion,
    visual_complexity,
)
from repro.vqi.layout import Position, layout_graph


class LayoutObjective:
    """Weighted aesthetics cost of a layout; lower is better."""

    __slots__ = ("crossing_weight", "congestion_weight", "angle_weight",
                 "length_weight")

    def __init__(self, crossing_weight: float = 4.0,
                 congestion_weight: float = 2.0,
                 angle_weight: float = 1.0,
                 length_weight: float = 1.0) -> None:
        self.crossing_weight = crossing_weight
        self.congestion_weight = congestion_weight
        self.angle_weight = angle_weight
        self.length_weight = length_weight

    def _length_variance(self, graph: Graph,
                         positions: Dict[int, Position]) -> float:
        lengths = [math.dist(positions[u], positions[v])
                   for u, v in graph.edges()]
        if len(lengths) < 2:
            return 0.0
        mean = sum(lengths) / len(lengths)
        if mean == 0:
            return 0.0
        return sum((x - mean) ** 2 for x in lengths) / (len(lengths)
                                                        * mean * mean)

    def cost(self, graph: Graph,
             positions: Dict[int, Position]) -> float:
        crossings = edge_crossings(graph, positions)
        congestion = node_congestion(graph, positions)
        angle = angular_resolution(graph, positions)
        angle_penalty = 1.0 - angle / math.pi
        length_penalty = self._length_variance(graph, positions)
        return (self.crossing_weight * crossings
                + self.congestion_weight * congestion
                + self.angle_weight * angle_penalty
                + self.length_weight * length_penalty)


def optimize_layout(graph: Graph,
                    objective: Optional[LayoutObjective] = None,
                    iterations: int = 400, seed: int = 0,
                    initial: Optional[Dict[int, Position]] = None
                    ) -> Dict[int, Position]:
    """Simulated-annealing refinement of a layout.

    Starts from ``initial`` (default: the spring layout) and proposes
    single-node jitters, accepting improvements always and
    degradations with Boltzmann probability under a geometric cooling
    schedule.  Returns the best layout seen; the result's objective
    cost is never worse than the starting layout's.
    """
    objective = objective or LayoutObjective()
    positions = dict(initial or layout_graph(graph, seed=seed))
    nodes = sorted(graph.nodes())
    if len(nodes) < 2:
        return positions
    rng = random.Random(seed)
    current_cost = objective.cost(graph, positions)
    best = dict(positions)
    best_cost = current_cost
    temperature = 0.30
    cooling = 0.99
    for _ in range(iterations):
        node = rng.choice(nodes)
        old = positions[node]
        radius = 0.05 + 0.25 * temperature
        candidate = (
            min(0.98, max(0.02, old[0] + rng.uniform(-radius, radius))),
            min(0.98, max(0.02, old[1] + rng.uniform(-radius, radius))),
        )
        positions[node] = candidate
        new_cost = objective.cost(graph, positions)
        delta = new_cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            current_cost = new_cost
            if new_cost < best_cost:
                best_cost = new_cost
                best = dict(positions)
        else:
            positions[node] = old
        temperature = max(temperature * cooling, 1e-3)
    return best


def layout_cost(graph: Graph, positions: Dict[int, Position],
                objective: Optional[LayoutObjective] = None) -> float:
    """Convenience wrapper: objective cost of a layout."""
    return (objective or LayoutObjective()).cost(graph, positions)


def arrange_panel(patterns: Sequence[Pattern],
                  seed: int = 0) -> List[Pattern]:
    """Order panel patterns by increasing visual complexity.

    A monotone complexity ramp lets users anchor on simple shapes and
    scan outward, lowering the extraneous cognitive load of the panel
    (§2.1: presentation is part of the load, not just content).
    """
    return sorted(patterns,
                  key=lambda p: (visual_complexity(p.graph, seed=seed),
                                 p.order(), p.code))


def panel_scan_cost(patterns: Sequence[Pattern],
                    seed: int = 0) -> float:
    """Extraneous-load proxy for a panel ordering.

    Sum of per-step complexity jumps plus position-weighted
    complexity: orderings that front-load complex patterns, or jump
    wildly between complexity levels, cost more.
    """
    if not patterns:
        return 0.0
    complexities = [visual_complexity(p.graph, seed=seed)
                    for p in patterns]
    n = len(complexities)
    jumps = sum(abs(complexities[i + 1] - complexities[i])
                for i in range(n - 1))
    # early slots carry more attention: weight position i by (n - i)
    positional = sum(c * (n - i) for i, c in enumerate(complexities))
    return jumps + positional / n
