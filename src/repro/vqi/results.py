"""Cognitive-load-aware presentation of query results (paper §2.5).

The tutorial notes that result presentation is "largely unexplored":
a Results Panel that dumps every embedding reads like a hairball.
This module implements the two obvious data-driven levers:

* **isomorphism grouping** — result subgraphs are grouped by
  canonical code; the panel shows one representative per structure
  class with a multiplicity badge, shrinking dozens of matches into
  a handful of distinct shapes;
* **complexity-ordered rendering** — representatives are drawn
  simplest-first with optimized layouts, reusing the Pattern Panel's
  aesthetics machinery.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.graph.graph import Graph
from repro.matching.canonical import canonical_code
from repro.query.engine import QueryResultSet
from repro.vqi.aesthetics import visual_complexity
from repro.vqi.layout import layout_graph
from repro.vqi.render import render_graph_svg


class ResultGroup:
    """All result graphs sharing one structure (isomorphism class)."""

    __slots__ = ("representative", "count", "graph_names")

    def __init__(self, representative: Graph, count: int,
                 graph_names: List[str]) -> None:
        self.representative = representative
        self.count = count
        self.graph_names = graph_names

    def __repr__(self) -> str:
        return (f"<ResultGroup count={self.count} "
                f"n={self.representative.order()}>")


def group_results(results: QueryResultSet,
                  max_graphs: Optional[int] = None) -> List[ResultGroup]:
    """Group matched graphs by isomorphism class, largest group first.

    For repository queries each matched *data graph* is one item; for
    network queries (where matches are small result subgraphs) each
    match is one item.  ``max_graphs`` caps how many matches are
    examined (canonicalisation of big graphs is not free).
    """
    groups: Dict[str, ResultGroup] = {}
    matches = results.matches
    if max_graphs is not None:
        matches = matches[:max_graphs]
    for match in matches:
        code = canonical_code(match.graph)
        existing = groups.get(code)
        name = match.graph.name or str(match.graph_index)
        if existing is None:
            groups[code] = ResultGroup(match.graph, 1, [name])
        else:
            existing.count += 1
            existing.graph_names.append(name)
    ordered = sorted(groups.values(),
                     key=lambda g: (-g.count,
                                    g.representative.order()))
    return ordered


def results_complexity_reduction(results: QueryResultSet,
                                 max_graphs: Optional[int] = 30,
                                 seed: int = 0) -> Dict[str, float]:
    """How much grouping shrinks what the user must read.

    Returns the raw item count, the group count, and the mean visual
    complexity of the representatives.
    """
    groups = group_results(results, max_graphs=max_graphs)
    shown = results.matches if max_graphs is None \
        else results.matches[:max_graphs]
    if not groups:
        return {"items": 0.0, "groups": 0.0, "mean_complexity": 0.0,
                "reduction": 0.0}
    complexities = [visual_complexity(g.representative, seed=seed)
                    for g in groups]
    items = float(len(shown))
    return {
        "items": items,
        "groups": float(len(groups)),
        "mean_complexity": sum(complexities) / len(complexities),
        "reduction": 1.0 - len(groups) / items if items else 0.0,
    }


def render_results_panel_svg(results: QueryResultSet,
                             columns: int = 3, cell: int = 180,
                             max_groups: int = 9,
                             max_graphs: Optional[int] = 30,
                             seed: int = 0) -> str:
    """Render grouped results: one card per structure class, with a
    multiplicity badge, ordered simplest-first."""
    groups = group_results(results, max_graphs=max_graphs)[:max_groups]
    groups.sort(key=lambda g: visual_complexity(g.representative,
                                                seed=seed))
    columns = max(1, columns)
    rows = (len(groups) + columns - 1) // columns if groups else 1
    width = columns * cell
    height = rows * cell
    palette: Dict[str, str] = {}
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="#fafafa"/>',
    ]
    for i, group in enumerate(groups):
        col, row = i % columns, i // columns
        x0, y0 = col * cell, row * cell
        parts.append(
            f'<rect x="{x0 + 2}" y="{y0 + 2}" width="{cell - 4}" '
            f'height="{cell - 4}" fill="#fff" stroke="#ddd"/>')
        parts.append(f'<g transform="translate({x0 + 10},{y0 + 24})">')
        positions = layout_graph(group.representative, seed=i)
        parts.append(render_graph_svg(
            group.representative, width=cell - 20, height=cell - 34,
            positions=positions, palette_index=palette,
            standalone=False))
        parts.append("</g>")
        parts.append(
            f'<text x="{x0 + 10}" y="{y0 + 16}" font-size="11" '
            f'fill="#444">x{group.count}</text>')
    parts.append("</svg>")
    return "\n".join(parts)
