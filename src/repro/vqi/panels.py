"""The four VQI panels (paper §2.1).

* :class:`AttributePanel` — node/edge label alphabet of the data
  source (data-dependent, auto-populated);
* :class:`PatternPanel` — basic + canned patterns (data-dependent,
  auto-populated, the hard part);
* :class:`QueryPanel` — the user's query under construction;
* :class:`ResultsPanel` — matches of the executed query.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import PipelineError
from repro.graph.graph import Graph
from repro.patterns.base import Pattern, PatternBudget, PatternSet
from repro.query.builder import QueryBuilder
from repro.query.engine import QueryResultSet
from repro.vqi.aesthetics import panel_aesthetics


class AttributePanel:
    """Label alphabets with occurrence counts, sorted by frequency."""

    def __init__(self, node_labels: Dict[str, int],
                 edge_labels: Dict[str, int]) -> None:
        self.node_labels = dict(node_labels)
        self.edge_labels = dict(edge_labels)

    @classmethod
    def from_repository(cls, repository: Sequence[Graph]
                        ) -> "AttributePanel":
        """Traverse a repository and collect both alphabets."""
        node_labels: Dict[str, int] = {}
        edge_labels: Dict[str, int] = {}
        for graph in repository:
            for label, count in graph.label_multiset().items():
                node_labels[label] = node_labels.get(label, 0) + count
            for (u, v), label in graph.edge_labels().items():
                edge_labels[label] = edge_labels.get(label, 0) + 1
        return cls(node_labels, edge_labels)

    @classmethod
    def from_network(cls, network: Graph) -> "AttributePanel":
        return cls.from_repository([network])

    def node_alphabet(self) -> List[str]:
        """Node labels, most frequent first."""
        return sorted(self.node_labels, key=lambda x: (-self.node_labels[x],
                                                       x))

    def edge_alphabet(self) -> List[str]:
        return sorted(self.edge_labels, key=lambda x: (-self.edge_labels[x],
                                                       x))

    def __repr__(self) -> str:
        return (f"<AttributePanel node_labels={len(self.node_labels)} "
                f"edge_labels={len(self.edge_labels)}>")


class PatternPanel:
    """Displayed patterns: the basic trio plus the canned selection."""

    def __init__(self, basic: Sequence[Pattern], canned: PatternSet,
                 budget: PatternBudget) -> None:
        self.basic = list(basic)
        self.canned = canned
        self.budget = budget

    def all_patterns(self) -> List[Pattern]:
        return self.basic + list(self.canned)

    def within_budget(self) -> bool:
        return len(self.canned) <= self.budget.max_patterns

    def aesthetics(self, seed: int = 0) -> Dict[str, float]:
        """Aesthetic metrics over the displayed pattern drawings."""
        return panel_aesthetics([p.graph for p in self.all_patterns()],
                                seed=seed)

    def __repr__(self) -> str:
        return (f"<PatternPanel basic={len(self.basic)} "
                f"canned={len(self.canned)}>")


class QueryPanel:
    """Wraps the query builder (the canvas)."""

    def __init__(self) -> None:
        self.builder = QueryBuilder()

    @property
    def query(self) -> Graph:
        return self.builder.query

    def reset(self) -> None:
        self.builder = QueryBuilder()

    def __repr__(self) -> str:
        return f"<QueryPanel {self.builder!r}>"


class ResultsPanel:
    """Holds the latest result set plus display aesthetics."""

    def __init__(self) -> None:
        self.results: Optional[QueryResultSet] = None

    def show(self, results: QueryResultSet) -> None:
        self.results = results

    def is_empty(self) -> bool:
        return self.results is None or not self.results.matches

    def displayed_graphs(self, limit: int = 5) -> List[Graph]:
        if self.results is None:
            return []
        return [m.graph for m in self.results.matches[:limit]]

    def aesthetics(self, limit: int = 5, seed: int = 0) -> Dict[str, float]:
        return panel_aesthetics(self.displayed_graphs(limit), seed=seed)

    def grouped(self, max_graphs: Optional[int] = 30):
        """Results grouped by isomorphism class (see
        :func:`repro.vqi.results.group_results`)."""
        from repro.vqi.results import group_results
        if self.results is None:
            return []
        return group_results(self.results, max_graphs=max_graphs)

    def render_svg(self, columns: int = 3, seed: int = 0) -> str:
        """Cognitive-load-aware SVG of the grouped results."""
        from repro.vqi.results import render_results_panel_svg
        if self.results is None:
            raise PipelineError("no results to render")
        return render_results_panel_svg(self.results, columns=columns,
                                        seed=seed)

    def __repr__(self) -> str:
        if self.results is None:
            return "<ResultsPanel empty>"
        return f"<ResultsPanel {self.results!r}>"
