"""SVG rendering of graphs, patterns, and whole VQI panels.

Headless stand-in for a GUI front-end: the output is plain SVG text,
good enough to eyeball a generated Pattern Panel in a browser and to
demonstrate that a :class:`repro.vqi.VQISpec` contains everything a
renderer needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.graph.graph import Graph
from repro.patterns.base import Pattern
from repro.vqi.layout import Position, layout_graph

_NODE_RADIUS = 12
_PALETTE = ("#4878a8", "#a85448", "#58a868", "#a88948", "#7858a8",
            "#48a0a8", "#a84878", "#6c757d")


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def _color_for(label: str, palette_index: Dict[str, str]) -> str:
    if label not in palette_index:
        palette_index[label] = _PALETTE[len(palette_index) % len(_PALETTE)]
    return palette_index[label]


def render_graph_svg(graph: Graph, width: int = 220, height: int = 220,
                     seed: int = 0,
                     positions: Optional[Dict[int, Position]] = None,
                     palette_index: Optional[Dict[str, str]] = None,
                     standalone: bool = True) -> str:
    """Render one graph as an SVG fragment (or standalone document)."""
    positions = positions or layout_graph(graph, seed=seed)
    palette_index = palette_index if palette_index is not None else {}
    parts: List[str] = []
    if standalone:
        parts.append(
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}">')

    def sx(x: float) -> float:
        return round(x * (width - 2 * _NODE_RADIUS) + _NODE_RADIUS, 1)

    def sy(y: float) -> float:
        return round(y * (height - 2 * _NODE_RADIUS) + _NODE_RADIUS, 1)

    for u, v in sorted(graph.edges()):
        x1, y1 = positions[u]
        x2, y2 = positions[v]
        label = graph.edge_label(u, v)
        parts.append(
            f'<line x1="{sx(x1)}" y1="{sy(y1)}" x2="{sx(x2)}" '
            f'y2="{sy(y2)}" stroke="#888" stroke-width="1.5"/>')
        if label:
            mx, my = (sx(x1) + sx(x2)) / 2, (sy(y1) + sy(y2)) / 2
            parts.append(
                f'<text x="{mx}" y="{my}" font-size="9" fill="#666" '
                f'text-anchor="middle">{_escape(label)}</text>')
    for node in sorted(graph.nodes()):
        x, y = positions[node]
        label = graph.node_label(node)
        color = _color_for(label, palette_index)
        parts.append(
            f'<circle cx="{sx(x)}" cy="{sy(y)}" r="{_NODE_RADIUS}" '
            f'fill="{color}" stroke="#333"/>')
        parts.append(
            f'<text x="{sx(x)}" y="{sy(y) + 4}" font-size="10" '
            f'fill="#fff" text-anchor="middle">'
            f'{_escape(label[:4])}</text>')
    if standalone:
        parts.append("</svg>")
    return "\n".join(parts)


def render_pattern_panel_svg(patterns: Sequence[Pattern],
                             columns: int = 4, cell: int = 160,
                             seed: int = 0, arrange: bool = False,
                             optimize: bool = False) -> str:
    """Render a Pattern Panel as a grid of pattern thumbnails.

    ``arrange`` orders thumbnails by increasing visual complexity
    (the cognitive-load-aware presentation of §2.5); ``optimize``
    anneals each thumbnail's layout against the aesthetics objective
    before rendering (slower, prettier).
    """
    if arrange:
        from repro.vqi.optimize import arrange_panel
        patterns = arrange_panel(patterns)
    count = len(patterns)
    columns = max(1, columns)
    rows = (count + columns - 1) // columns if count else 1
    width = columns * cell
    height = rows * cell
    palette_index: Dict[str, str] = {}
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="#fafafa"/>',
    ]
    for i, pattern in enumerate(patterns):
        col, row = i % columns, i // columns
        x0, y0 = col * cell, row * cell
        parts.append(
            f'<rect x="{x0 + 2}" y="{y0 + 2}" width="{cell - 4}" '
            f'height="{cell - 4}" fill="#fff" stroke="#ddd"/>')
        parts.append(f'<g transform="translate({x0 + 10},{y0 + 10})">')
        positions = None
        if optimize:
            from repro.vqi.optimize import optimize_layout
            positions = optimize_layout(pattern.graph, seed=seed + i,
                                        iterations=200)
        parts.append(render_graph_svg(
            pattern.graph, width=cell - 20, height=cell - 20,
            seed=seed + i, positions=positions,
            palette_index=palette_index,
            standalone=False))
        parts.append("</g>")
    parts.append("</svg>")
    return "\n".join(parts)
