"""Seeded random and motif graph generators.

These are general-purpose structural generators; domain-flavoured
dataset builders (chemical compounds, social networks) live in
:mod:`repro.datasets` and compose these primitives.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.errors import GraphError
from repro.graph.graph import Graph


def path_graph(n: int, label: str = "", edge_label: str = "") -> Graph:
    """Simple path on ``n`` nodes (n >= 1)."""
    if n < 1:
        raise GraphError("path_graph requires n >= 1")
    g = Graph(name=f"path{n}")
    for i in range(n):
        g.add_node(i, label=label)
    for i in range(n - 1):
        g.add_edge(i, i + 1, label=edge_label)
    return g


def cycle_graph(n: int, label: str = "", edge_label: str = "") -> Graph:
    """Simple cycle on ``n`` nodes (n >= 3)."""
    if n < 3:
        raise GraphError("cycle_graph requires n >= 3")
    g = path_graph(n, label=label, edge_label=edge_label)
    g.name = f"cycle{n}"
    g.add_edge(n - 1, 0, label=edge_label)
    return g


def star_graph(leaves: int, label: str = "", edge_label: str = "") -> Graph:
    """Star with one hub (node 0) and ``leaves`` leaves (leaves >= 1)."""
    if leaves < 1:
        raise GraphError("star_graph requires leaves >= 1")
    g = Graph(name=f"star{leaves}")
    g.add_node(0, label=label)
    for i in range(1, leaves + 1):
        g.add_node(i, label=label)
        g.add_edge(0, i, label=edge_label)
    return g


def complete_graph(n: int, label: str = "", edge_label: str = "") -> Graph:
    """Clique on ``n`` nodes (n >= 1)."""
    if n < 1:
        raise GraphError("complete_graph requires n >= 1")
    g = Graph(name=f"K{n}")
    for i in range(n):
        g.add_node(i, label=label)
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(i, j, label=edge_label)
    return g


def petal_graph(petals: int, petal_length: int = 2,
                label: str = "", edge_label: str = "") -> Graph:
    """Petal/"book" graph: ``petals`` paths sharing the same two endpoints.

    Two anchor nodes (0, 1) joined by an edge, plus ``petals``
    internally-disjoint paths of ``petal_length`` edges between them.
    Matches the "petal" topology class of real query logs.
    """
    if petals < 1 or petal_length < 2:
        raise GraphError("petal_graph requires petals >= 1, length >= 2")
    g = Graph(name=f"petal{petals}x{petal_length}")
    g.add_node(0, label=label)
    g.add_node(1, label=label)
    g.add_edge(0, 1, label=edge_label)
    nxt = 2
    for _ in range(petals):
        prev = 0
        for step in range(petal_length - 1):
            g.add_node(nxt, label=label)
            g.add_edge(prev, nxt, label=edge_label)
            prev = nxt
            nxt += 1
        g.add_edge(prev, 1, label=edge_label)
    return g


def flower_graph(cycles: int, cycle_size: int = 3,
                 label: str = "", edge_label: str = "") -> Graph:
    """Flower: ``cycles`` cycles of ``cycle_size`` sharing one hub node."""
    if cycles < 1 or cycle_size < 3:
        raise GraphError("flower_graph requires cycles >= 1, size >= 3")
    g = Graph(name=f"flower{cycles}x{cycle_size}")
    g.add_node(0, label=label)
    nxt = 1
    for _ in range(cycles):
        ring = [0]
        for _ in range(cycle_size - 1):
            g.add_node(nxt, label=label)
            ring.append(nxt)
            nxt += 1
        for i in range(len(ring)):
            g.add_edge(ring[i], ring[(i + 1) % len(ring)], label=edge_label)
    return g


def random_labels(graph: Graph, labels: Sequence[str],
                  rng: random.Random) -> Graph:
    """Assign node labels drawn uniformly from ``labels`` (in place)."""
    if not labels:
        raise GraphError("labels must be non-empty")
    for node in graph.nodes():
        graph.set_node_label(node, rng.choice(labels))
    return graph


def gnm_random_graph(n: int, m: int, rng: Optional[random.Random] = None,
                     labels: Sequence[str] = ("",)) -> Graph:
    """Erdos-Renyi G(n, m) with uniformly random node labels."""
    rng = rng or random.Random(0)
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise GraphError(f"cannot place {m} edges in a {n}-node simple graph")
    g = Graph(name=f"gnm_{n}_{m}")
    for i in range(n):
        g.add_node(i, label=rng.choice(labels))
    placed = 0
    while placed < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
            placed += 1
    return g


def random_tree(n: int, rng: Optional[random.Random] = None,
                labels: Sequence[str] = ("",)) -> Graph:
    """Uniform-attachment random tree on ``n`` nodes."""
    if n < 1:
        raise GraphError("random_tree requires n >= 1")
    rng = rng or random.Random(0)
    g = Graph(name=f"tree{n}")
    g.add_node(0, label=rng.choice(labels))
    for i in range(1, n):
        g.add_node(i, label=rng.choice(labels))
        g.add_edge(i, rng.randrange(i))
    return g


def barabasi_albert_graph(n: int, m: int,
                          rng: Optional[random.Random] = None,
                          labels: Sequence[str] = ("",)) -> Graph:
    """Preferential-attachment graph: each new node attaches to ``m``
    existing nodes chosen proportionally to degree.

    Produces the heavy-tailed degree distributions typical of the
    large networks TATTOO targets.
    """
    if n < m + 1 or m < 1:
        raise GraphError("barabasi_albert_graph requires n > m >= 1")
    rng = rng or random.Random(0)
    g = Graph(name=f"ba_{n}_{m}")
    # seed clique of m+1 nodes so every new node has m distinct targets
    for i in range(m + 1):
        g.add_node(i, label=rng.choice(labels))
    for i in range(m + 1):
        for j in range(i + 1, m + 1):
            g.add_edge(i, j)
    # repeated-endpoint list implements preferential attachment
    endpoints: List[int] = []
    for u, v in g.edges():
        endpoints.extend((u, v))
    for i in range(m + 1, n):
        g.add_node(i, label=rng.choice(labels))
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(endpoints))
        for t in targets:
            g.add_edge(i, t)
            endpoints.extend((i, t))
    return g


def planted_partition_graph(communities: int, community_size: int,
                            p_in: float, p_out: float,
                            rng: Optional[random.Random] = None,
                            labels: Sequence[str] = ("",)) -> Graph:
    """Planted-partition (stochastic block) graph.

    Dense intra-community wiring creates the truss-infested regions
    TATTOO's decomposition is designed to find.
    """
    if not (0.0 <= p_out <= p_in <= 1.0):
        raise GraphError("require 0 <= p_out <= p_in <= 1")
    rng = rng or random.Random(0)
    n = communities * community_size
    g = Graph(name=f"ppg_{communities}x{community_size}")
    for i in range(n):
        g.add_node(i, label=rng.choice(labels))
    for u in range(n):
        for v in range(u + 1, n):
            same = (u // community_size) == (v // community_size)
            if rng.random() < (p_in if same else p_out):
                g.add_edge(u, v)
    return g
