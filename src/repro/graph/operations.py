"""Structural operations on :class:`repro.graph.Graph`.

Traversal, connectivity, subgraph extraction, and small structural
helpers used throughout the pattern-selection pipelines.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import GraphError, NodeNotFoundError
from repro.graph.graph import Graph, edge_key


def bfs_order(graph: Graph, start: int) -> List[int]:
    """Nodes reachable from ``start`` in breadth-first order."""
    if not graph.has_node(start):
        raise NodeNotFoundError(start)
    seen = {start}
    order = [start]
    queue = deque([start])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in seen:
                seen.add(v)
                order.append(v)
                queue.append(v)
    return order


def connected_components(graph: Graph) -> List[Set[int]]:
    """Connected components as a list of node sets (deterministic order)."""
    remaining = set(graph.nodes())
    components: List[Set[int]] = []
    for node in sorted(remaining):
        if node not in remaining:
            continue
        component = set(bfs_order(graph, node))
        components.append(component)
        remaining -= component
    return components


def is_connected(graph: Graph) -> bool:
    """True for the empty graph and any graph with one component."""
    if graph.order() == 0:
        return True
    first = next(iter(graph.nodes()))
    return len(bfs_order(graph, first)) == graph.order()


def induced_subgraph(graph: Graph, nodes: Iterable[int],
                     name: str = "") -> Graph:
    """Node-induced subgraph on ``nodes`` (keeps original node ids)."""
    node_set = set(nodes)
    for node in node_set:
        if not graph.has_node(node):
            raise NodeNotFoundError(node)
    sub = Graph(name=name)
    for node in node_set:
        sub.add_node(node, label=graph.node_label(node),
                     **graph.node_attrs(node))
    for u, v in graph.edges():
        if u in node_set and v in node_set:
            sub.add_edge(u, v, label=graph.edge_label(u, v),
                         **graph.edge_attrs(u, v))
    return sub


def edge_subgraph(graph: Graph, edges: Iterable[Tuple[int, int]],
                  name: str = "") -> Graph:
    """Subgraph containing exactly ``edges`` and their endpoints."""
    sub = Graph(name=name)
    keys = [edge_key(u, v) for u, v in edges]
    for u, v in keys:
        if not graph.has_edge(u, v):
            raise GraphError(f"edge ({u}, {v}) not in graph")
        for node in (u, v):
            if not sub.has_node(node):
                sub.add_node(node, label=graph.node_label(node),
                             **graph.node_attrs(node))
        if not sub.has_edge(u, v):
            sub.add_edge(u, v, label=graph.edge_label(u, v),
                         **graph.edge_attrs(u, v))
    return sub


def shortest_path_length(graph: Graph, source: int,
                         target: int) -> Optional[int]:
    """Hop count of the shortest path, or None if disconnected."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        return 0
    seen = {source}
    queue = deque([(source, 0)])
    while queue:
        u, dist = queue.popleft()
        for v in graph.neighbors(u):
            if v == target:
                return dist + 1
            if v not in seen:
                seen.add(v)
                queue.append((v, dist + 1))
    return None


def diameter(graph: Graph) -> int:
    """Longest shortest path; raises on disconnected or empty graphs."""
    if graph.order() == 0:
        raise GraphError("diameter of an empty graph is undefined")
    best = 0
    for source in graph.nodes():
        # BFS from every node; fine for the small graphs we measure.
        dist = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        if len(dist) != graph.order():
            raise GraphError("diameter of a disconnected graph is undefined")
        best = max(best, max(dist.values()))
    return best


def triangles(graph: Graph) -> List[Tuple[int, int, int]]:
    """All triangles as sorted node triples, each listed once."""
    found: List[Tuple[int, int, int]] = []
    for u in graph.nodes():
        nbrs_u = [v for v in graph.neighbors(u) if v > u]
        for i, v in enumerate(nbrs_u):
            for w in nbrs_u[i + 1:]:
                if graph.has_edge(v, w):
                    tri = tuple(sorted((u, v, w)))
                    found.append(tri)  # u < v,w ensures uniqueness
    return found


def cycle_basis_sizes(graph: Graph) -> List[int]:
    """Sizes of a fundamental cycle basis (per spanning forest).

    Used by cognitive-load measures: the number and length of
    independent cycles is a strong predictor of perceived complexity.
    """
    parent: Dict[int, Optional[int]] = {}
    depth: Dict[int, int] = {}
    tree_edges: Set[Tuple[int, int]] = set()
    for root in graph.nodes():
        if root in parent:
            continue
        parent[root] = None
        depth[root] = 0
        stack = [root]
        while stack:
            u = stack.pop()
            for v in graph.neighbors(u):
                if v not in parent:
                    parent[v] = u
                    depth[v] = depth[u] + 1
                    tree_edges.add(edge_key(u, v))
                    stack.append(v)
    sizes: List[int] = []
    for u, v in graph.edges():
        if edge_key(u, v) in tree_edges:
            continue
        # fundamental cycle = tree path u..v plus the non-tree edge
        a, b = u, v
        length = 1
        while a != b:
            if depth[a] < depth[b]:
                a, b = b, a
            a = parent[a]  # type: ignore[assignment]
            length += 1
        sizes.append(length)
    return sizes


def is_tree(graph: Graph) -> bool:
    """Connected and acyclic (the empty graph counts as a tree)."""
    if graph.order() == 0:
        return True
    return is_connected(graph) and graph.size() == graph.order() - 1


def is_path_graph(graph: Graph) -> bool:
    """A simple path: tree with max degree <= 2."""
    if graph.order() == 0:
        return False
    if not is_tree(graph):
        return False
    return all(graph.degree(v) <= 2 for v in graph.nodes())


def is_star(graph: Graph) -> bool:
    """A star: one hub adjacent to all leaves, no other edges (n >= 3)."""
    n = graph.order()
    if n < 3 or not is_tree(graph):
        return False
    degrees = graph.degree_sequence()
    return degrees[0] == n - 1 and all(d == 1 for d in degrees[1:])


def is_cycle_graph(graph: Graph) -> bool:
    """A single simple cycle covering all nodes (n >= 3)."""
    n = graph.order()
    if n < 3 or graph.size() != n:
        return False
    return is_connected(graph) and all(graph.degree(v) == 2
                                       for v in graph.nodes())


def is_clique(graph: Graph) -> bool:
    """Complete graph on n >= 2 nodes."""
    n = graph.order()
    if n < 2:
        return False
    return graph.size() == n * (n - 1) // 2


def disjoint_union(graphs: Sequence[Graph], name: str = "") -> Graph:
    """Disjoint union; node ids are renumbered 0..n-1 across inputs."""
    out = Graph(name=name)
    offset = 0
    for g in graphs:
        mapping = {u: offset + i for i, u in enumerate(sorted(g.nodes()))}
        for u in sorted(g.nodes()):
            out.add_node(mapping[u], label=g.node_label(u),
                         **g.node_attrs(u))
        for u, v in g.edges():
            out.add_edge(mapping[u], mapping[v], label=g.edge_label(u, v),
                         **g.edge_attrs(u, v))
        offset += g.order()
    return out


def sample_connected_node_set(graph: Graph, size: int, rng,
                              attempts: int = 30) -> Optional[Set[int]]:
    """Random connected node set of ``size`` nodes, or None.

    Grown by random frontier expansion from a random seed node;
    retried up to ``attempts`` times (a seed may sit in a component
    smaller than ``size``).
    """
    if size < 1:
        raise GraphError("sample size must be >= 1")
    if graph.order() < size:
        return None
    nodes = sorted(graph.nodes())
    for _ in range(attempts):
        current = {rng.choice(nodes)}
        frontier: Set[int] = set()
        for u in current:
            frontier.update(graph.neighbors(u))
        while len(current) < size and frontier:
            pick = rng.choice(sorted(frontier))
            current.add(pick)
            frontier.discard(pick)
            frontier.update(v for v in graph.neighbors(pick)
                            if v not in current)
        if len(current) == size:
            return current
    return None


def largest_component_subgraph(graph: Graph, name: str = "") -> Graph:
    """Induced subgraph on the largest connected component."""
    components = connected_components(graph)
    if not components:
        return Graph(name=name)
    biggest = max(components, key=len)
    return induced_subgraph(graph, biggest, name=name)
