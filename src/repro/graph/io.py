"""Serialization for graphs and graph repositories.

Two formats are supported:

* **JSON** — full fidelity (labels + attributes), used by the VQI spec.
* **``.lg`` text** — the line-based format common in subgraph-mining
  datasets (``t # <name>`` / ``v <id> <label>`` / ``e <u> <v> <label>``),
  used for repositories of small graphs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from repro.errors import GraphInputError
from repro.graph.graph import Graph

PathLike = Union[str, Path]


def graph_to_dict(graph: Graph) -> Dict[str, Any]:
    """JSON-serializable dict representation of a graph."""
    return {
        "name": graph.name,
        "nodes": [
            {"id": u, "label": graph.node_label(u),
             **({"attrs": graph.node_attrs(u)} if graph.node_attrs(u) else {})}
            for u in sorted(graph.nodes())
        ],
        "edges": [
            {"u": u, "v": v, "label": graph.edge_label(u, v),
             **({"attrs": graph.edge_attrs(u, v)}
                if graph.edge_attrs(u, v) else {})}
            for u, v in sorted(graph.edges())
        ],
    }


def graph_from_dict(data: Dict[str, Any],
                    path: PathLike | None = None) -> Graph:
    """Inverse of :func:`graph_to_dict`.

    Raises :class:`~repro.errors.GraphInputError` on malformed input;
    ``path`` (when given) is carried on the error for context.
    """
    try:
        g = Graph(name=data.get("name", ""))
        for node in data["nodes"]:
            g.add_node(int(node["id"]), label=node.get("label", ""),
                       **node.get("attrs", {}))
        for edge in data["edges"]:
            g.add_edge(int(edge["u"]), int(edge["v"]),
                       label=edge.get("label", ""),
                       **edge.get("attrs", {}))
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphInputError(f"malformed graph dict: {exc}",
                              path=path) from exc
    return g


def graph_to_json(graph: Graph, indent: int = 0) -> str:
    """Serialize one graph to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent or None)


def graph_from_json(text: str) -> Graph:
    """Parse one graph from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphInputError(f"invalid JSON: {exc}",
                              line=exc.lineno) from exc
    return graph_from_dict(data)


def write_lg(graphs: Iterable[Graph], path: PathLike) -> int:
    """Write a repository to ``.lg`` format; returns the graph count.

    Attributes are not preserved (the format has no room for them).
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for graph in graphs:
            handle.write(f"t # {graph.name or count}\n")
            mapping = {u: i for i, u in enumerate(sorted(graph.nodes()))}
            for u in sorted(graph.nodes()):
                handle.write(f"v {mapping[u]} {graph.node_label(u)}\n")
            for u, v in sorted(graph.edges()):
                label = graph.edge_label(u, v)
                handle.write(f"e {mapping[u]} {mapping[v]} {label}\n")
            count += 1
    return count


def read_lg(path: PathLike) -> List[Graph]:
    """Read a repository from ``.lg`` format.

    Malformed lines raise :class:`~repro.errors.GraphInputError`
    carrying the offending file and 1-based line number, so callers
    (and their users) see *where* the input went wrong.  A file whose
    final record lacks its terminating newline, or that carries
    binary garbage (NUL bytes), is rejected the same way rather than
    silently parsing a truncated prefix — every complete ``.lg``
    writer (including :func:`write_lg`) newline-terminates each
    record, so a missing terminator is the signature of a torn write.
    """
    graphs: List[Graph] = []
    current: Graph | None = None
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if text and not text.endswith("\n"):
        raise GraphInputError(
            "file ends mid-record (no terminating newline); the "
            "final record was likely truncated by an interrupted "
            "write", path=path, line=text.count("\n") + 1)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if "\x00" in raw:
            raise GraphInputError(
                "binary garbage (NUL byte) in record",
                path=path, line=lineno)
        line = raw.strip()
        if not line:
            continue
        parts = line.split()
        kind = parts[0]
        try:
            if kind == "t":
                name = parts[2] if len(parts) > 2 else ""
                current = Graph(name=name)
                graphs.append(current)
            elif kind == "v":
                if current is None:
                    raise GraphInputError(
                        "vertex before first 't' line",
                        path=path, line=lineno)
                label = parts[2] if len(parts) > 2 else ""
                current.add_node(int(parts[1]), label=label)
            elif kind == "e":
                if current is None:
                    raise GraphInputError(
                        "edge before first 't' line",
                        path=path, line=lineno)
                label = parts[3] if len(parts) > 3 else ""
                current.add_edge(int(parts[1]), int(parts[2]),
                                 label=label)
            else:
                raise GraphInputError(
                    f"unknown record type {kind!r}",
                    path=path, line=lineno)
        except (IndexError, ValueError) as exc:
            raise GraphInputError(
                f"malformed line {line!r}",
                path=path, line=lineno) from exc
    return graphs


def write_repository_json(graphs: Iterable[Graph], path: PathLike) -> int:
    """Write a repository (list of graphs) as one JSON document."""
    payload = [graph_to_dict(g) for g in graphs]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return len(payload)


def read_repository_json(path: PathLike) -> List[Graph]:
    """Read a repository written by :func:`write_repository_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise GraphInputError(f"invalid JSON: {exc}", path=path,
                                  line=exc.lineno) from exc
    if not isinstance(payload, list):
        raise GraphInputError("expected a JSON array of graphs",
                              path=path)
    return [graph_from_dict(item, path=path) for item in payload]
