"""Compact CSR snapshot of a :class:`repro.graph.graph.Graph`.

A :class:`CompactGraph` is a frozen, array-backed view of a graph:
node ids, label ids, and adjacency live in flat ``array`` buffers
(CSR layout: an ``offsets`` prefix-sum plus one sorted ``neighbors``
run per node) and labels are interned into small string tables.  It
exists for the two places nested dicts hurt most:

* **hot loops** — the indexed matching kernel and the truss peeler
  scan neighbor *slices* (``offsets[p] .. offsets[p+1]``) and compare
  interned label *ids* instead of hashing ints and strings through
  dict-of-dict adjacency;
* **process boundaries** — pickling a dict-of-dict graph serialises
  every int and string object separately, while a compact graph ships
  a handful of flat byte buffers (:meth:`encode`), which is what
  :func:`repro.perf.pmap` pays per work item and what an on-disk
  store tier will want later.

It is built behind the version-invalidated cached-view API
(:meth:`repro.graph.graph.Graph.compact`, next to
``adjacency_sets()``/``label_index()``): mutate the graph and the
next ``compact()`` call rebuilds.  The round trip is lossless —
:meth:`to_graph` restores ids, labels, attributes, *and* the node and
edge insertion order, so iteration-order-sensitive consumers (seeded
samplers, dedup loops) see exactly the graph that was encoded.

Internally everything is positional: node *positions* are
``0..n-1`` in insertion order, ``neighbors`` holds positions (sorted
ascending within each node's slice), and ``edge_label_ids`` aligns
with ``neighbors``.  ``ins_neighbors`` carries the same runs in
per-node edge-insertion order (what ``Graph.neighbors()`` yields) for
consumers whose enumeration order must match the dict path exactly.
``node_ids`` maps positions back to the original ids at the boundary.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.graph.graph import Graph, edge_key

#: Bump when the :meth:`CompactGraph.encode` wire layout changes.
ENCODING_VERSION = 1

#: array typecodes: positions/label ids/offsets are 32-bit, original
#: node ids 64-bit (callers may use arbitrary int ids).
_POS = "i"
_ID = "q"

#: signed typecodes from narrowest to widest, with their value bounds;
#: :func:`_pack` picks the first one every element fits in, so tiny
#: graphs ship 1-byte entries instead of fixed 4/8-byte ones.
_WIDTHS = (("b", -2 ** 7, 2 ** 7 - 1),
           ("h", -2 ** 15, 2 ** 15 - 1),
           ("i", -2 ** 31, 2 ** 31 - 1),
           ("q", -2 ** 63, 2 ** 63 - 1))


def _pack(values: array) -> Tuple[str, bytes]:
    """``(typecode, buffer)`` with the narrowest width that fits."""
    if not len(values):
        return "b", b""
    lo, hi = min(values), max(values)
    for code, low, high in _WIDTHS:
        if low <= lo and hi <= high:
            break
    if code == values.typecode:
        return code, values.tobytes()
    return code, array(code, values).tobytes()


def _unpack(packed: Tuple[str, bytes], typecode: str) -> array:
    """Inverse of :func:`_pack`, widened back to ``typecode``."""
    code, buffer = packed
    wire = array(code)
    wire.frombytes(buffer)
    return wire if code == typecode else array(typecode, wire)


class CompactGraph:
    """Frozen CSR snapshot of a labeled graph.

    Never constructed directly — use :meth:`from_graph` (or
    :meth:`repro.graph.graph.Graph.compact`, which caches one per
    graph version).  All buffers are read-only by convention; the
    class offers no mutation API.
    """

    __slots__ = ("name", "node_ids", "node_label_ids", "node_labels",
                 "edge_labels", "edge_list", "offsets", "neighbors",
                 "edge_label_ids", "ins_neighbors", "node_attrs",
                 "edge_attrs", "_index", "_label_lookup",
                 "_edge_label_lookup", "_label_positions", "_nlc")

    def __init__(self, name: str, node_ids: array, node_label_ids: array,
                 node_labels: Tuple[str, ...],
                 edge_labels: Tuple[str, ...], edge_list: array,
                 node_attrs: Dict[int, Dict[str, Any]],
                 edge_attrs: Dict[Tuple[int, int], Dict[str, Any]]
                 ) -> None:
        self.name = name
        self.node_ids = node_ids
        self.node_label_ids = node_label_ids
        self.node_labels = node_labels
        self.edge_labels = edge_labels
        # (u_pos, v_pos, edge_label_id) triples in edge insertion
        # order — the lossless wire form the CSR is derived from
        self.edge_list = edge_list
        self.node_attrs = node_attrs
        self.edge_attrs = edge_attrs
        (self.offsets, self.neighbors, self.edge_label_ids,
         self.ins_neighbors) = _build_csr(len(node_ids), edge_list)
        # lazy, derived, never pickled
        self._index: Optional[Dict[int, int]] = None
        self._label_lookup: Optional[Dict[str, int]] = None
        self._edge_label_lookup: Optional[Dict[str, int]] = None
        self._label_positions: Optional[Tuple[Tuple[int, ...], ...]] = None
        self._nlc: Optional[List[Dict[int, int]]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph) -> "CompactGraph":
        """Snapshot ``graph``; positions follow node insertion order."""
        index: Dict[int, int] = {}
        node_ids = array(_ID)
        for node in graph.nodes():
            index[node] = len(node_ids)
            node_ids.append(node)
        node_label_table: Dict[str, int] = {}
        node_label_ids = array(_POS)
        for node in graph.nodes():
            label = graph.node_label(node)
            lid = node_label_table.setdefault(label, len(node_label_table))
            node_label_ids.append(lid)
        edge_label_table: Dict[str, int] = {}
        edge_list = array(_POS)
        for u, v in graph.edges():
            label = graph.edge_label(u, v)
            lid = edge_label_table.setdefault(label, len(edge_label_table))
            edge_list.append(index[u])
            edge_list.append(index[v])
            edge_list.append(lid)
        compact = cls(
            graph.name, node_ids, node_label_ids,
            tuple(node_label_table), tuple(edge_label_table), edge_list,
            {u: dict(a) for u, a in graph._node_attrs.items() if a},
            {k: dict(a) for k, a in graph._edge_attrs.items() if a})
        compact._index = index
        return compact

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    def order(self) -> int:
        """Number of nodes."""
        return len(self.node_ids)

    def size(self) -> int:
        """Number of edges."""
        return len(self.edge_list) // 3

    def degree_of(self, position: int) -> int:
        return self.offsets[position + 1] - self.offsets[position]

    def index(self) -> Dict[int, int]:
        """``{original node id: position}`` (built once, cached)."""
        if self._index is None:
            self._index = {node: position for position, node
                           in enumerate(self.node_ids)}
        return self._index

    # ------------------------------------------------------------------
    # label tables
    # ------------------------------------------------------------------
    def label_id(self, label: str) -> Optional[int]:
        """Interned id of a node label, or None if it never occurs."""
        if self._label_lookup is None:
            self._label_lookup = {lbl: lid for lid, lbl
                                  in enumerate(self.node_labels)}
        return self._label_lookup.get(label)

    def edge_label_id(self, label: str) -> Optional[int]:
        """Interned id of an edge label, or None if it never occurs."""
        if self._edge_label_lookup is None:
            self._edge_label_lookup = {lbl: lid for lid, lbl
                                       in enumerate(self.edge_labels)}
        return self._edge_label_lookup.get(label)

    def label_set(self) -> FrozenSet[str]:
        """Distinct node labels — the interned table as a frozenset."""
        return frozenset(self.node_labels)

    def label_positions(self, label_id: int) -> Tuple[int, ...]:
        """Positions of nodes carrying ``label_id``, insertion order."""
        if self._label_positions is None:
            grouped: List[List[int]] = [[] for _ in self.node_labels]
            for position, lid in enumerate(self.node_label_ids):
                grouped[lid].append(position)
            self._label_positions = tuple(tuple(g) for g in grouped)
        return self._label_positions[label_id]

    def neighbor_label_id_counts(self) -> List[Dict[int, int]]:
        """Per position, ``{neighbor label id: count}`` (cached).

        The compact counterpart of :meth:`repro.graph.graph.Graph.
        neighbor_label_counts` — the signature the matching kernel
        filters candidate pools with, keyed by interned label ids.
        """
        if self._nlc is None:
            offsets, neighbors = self.offsets, self.neighbors
            label_ids = self.node_label_ids
            signatures: List[Dict[int, int]] = []
            for position in range(len(self.node_ids)):
                counts: Dict[int, int] = {}
                for slot in range(offsets[position],
                                  offsets[position + 1]):
                    lid = label_ids[neighbors[slot]]
                    counts[lid] = counts.get(lid, 0) + 1
                signatures.append(counts)
            self._nlc = signatures
        return self._nlc

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def edge_slot(self, u_pos: int, v_pos: int) -> int:
        """Index of ``v_pos`` in ``u_pos``'s neighbor slice, or -1.

        A found slot doubles as the edge-label handle:
        ``edge_label_ids[slot]`` is the label of the edge.  Binary
        search over the sorted slice — O(log degree), no allocation.
        """
        lo = self.offsets[u_pos]
        hi = self.offsets[u_pos + 1]
        slot = bisect_left(self.neighbors, v_pos, lo, hi)
        if slot < hi and self.neighbors[slot] == v_pos:
            return slot
        return -1

    def has_edge_positions(self, u_pos: int, v_pos: int) -> bool:
        return self.edge_slot(u_pos, v_pos) >= 0

    def common_neighbors(self, u_pos: int, v_pos: int) -> int:
        """Count of shared neighbors — triangle support of the edge.

        Scans the smaller slice and binary-searches the larger, so the
        cost is ``d_small * log(d_big)`` with no set materialisation.
        """
        offsets, neighbors = self.offsets, self.neighbors
        lo_u, hi_u = offsets[u_pos], offsets[u_pos + 1]
        lo_v, hi_v = offsets[v_pos], offsets[v_pos + 1]
        if hi_u - lo_u > hi_v - lo_v:
            lo_u, hi_u, lo_v, hi_v = lo_v, hi_v, lo_u, hi_u
        count = 0
        for slot in range(lo_u, hi_u):
            w = neighbors[slot]
            probe = bisect_left(neighbors, w, lo_v, hi_v)
            if probe < hi_v and neighbors[probe] == w:
                count += 1
        return count

    # ------------------------------------------------------------------
    # round trip and wire format
    # ------------------------------------------------------------------
    def to_graph(self) -> Graph:
        """Lossless reconstruction, including insertion order.

        Stores are assembled directly (the same construction style as
        :meth:`repro.graph.graph.Graph.copy`): nodes in position
        order, edges by replaying ``edge_list`` in its recorded
        insertion order, so every dict iterates exactly like the
        source graph's.
        """
        g = Graph(name=self.name)
        ids = self.node_ids
        adj: Dict[int, Dict[int, Tuple[int, int]]] = {}
        node_labels: Dict[int, str] = {}
        for position, node in enumerate(ids):
            adj[node] = {}
            node_labels[node] = \
                self.node_labels[self.node_label_ids[position]]
        edge_labels: Dict[Tuple[int, int], str] = {}
        triples = self.edge_list
        for at in range(0, len(triples), 3):
            u, v = ids[triples[at]], ids[triples[at + 1]]
            key = edge_key(u, v)
            adj[u][v] = key
            adj[v][u] = key
            edge_labels[key] = self.edge_labels[triples[at + 2]]
        g._adj = adj
        g._node_labels = node_labels
        g._edge_labels = edge_labels
        g._node_attrs = {u: dict(a) for u, a in self.node_attrs.items()}
        g._edge_attrs = {k: dict(a) for k, a in self.edge_attrs.items()}
        return g

    def encode(self) -> Tuple:
        """The flat-bytes wire form: a tuple of byte buffers, interned
        label tables, and (usually empty) attribute dicts.

        This is what a pickled :class:`repro.graph.graph.Graph`
        actually ships (see ``Graph.__reduce__``): the CSR arrays are
        *not* included — they are derived state, rebuilt from
        ``edge_list`` on decode — and each remaining array is packed
        at the narrowest element width its values fit in.
        """
        return (ENCODING_VERSION, self.name, len(self.node_ids),
                _pack(self.node_ids), _pack(self.node_label_ids),
                self.node_labels, self.edge_labels,
                _pack(self.edge_list),
                self.node_attrs or None, self.edge_attrs or None)

    @classmethod
    def from_encoded(cls, state: Tuple) -> "CompactGraph":
        """Rebuild from :meth:`encode` output (inverse operation)."""
        (_, name, _, id_pack, label_id_pack, node_labels, edge_labels,
         edge_pack, node_attrs, edge_attrs) = state
        node_ids = _unpack(id_pack, _ID)
        node_label_ids = _unpack(label_id_pack, _POS)
        edge_list = _unpack(edge_pack, _POS)
        return cls(name, node_ids, node_label_ids, tuple(node_labels),
                   tuple(edge_labels), edge_list, node_attrs or {},
                   edge_attrs or {})

    def nbytes(self) -> int:
        """Total bytes held in flat array buffers (labels excluded)."""
        return sum(buf.itemsize * len(buf) for buf in
                   (self.node_ids, self.node_label_ids, self.edge_list,
                    self.offsets, self.neighbors, self.edge_label_ids,
                    self.ins_neighbors))

    def __reduce__(self):
        return (CompactGraph.from_encoded, (self.encode(),))

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return (f"<CompactGraph{tag} n={self.order()} m={self.size()} "
                f"labels={len(self.node_labels)}>")


def _build_csr(n: int, edge_list: array
               ) -> Tuple[array, array, array, array]:
    """Derive (offsets, neighbors, edge_label_ids, ins_neighbors)
    from edge triples.

    Neighbor runs in ``neighbors`` are sorted ascending by position so
    slices support binary search; ``edge_label_ids`` stays aligned
    through the sort.  ``ins_neighbors`` holds the same runs (same
    ``offsets``) in per-node edge-insertion order — the order
    ``Graph.neighbors()`` iterates, which enumeration-order-faithful
    consumers (the matching kernel's anchored candidate pools) scan.
    """
    incident: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for at in range(0, len(edge_list), 3):
        u, v, lid = edge_list[at], edge_list[at + 1], edge_list[at + 2]
        incident[u].append((v, lid))
        incident[v].append((u, lid))
    offsets = array(_POS, [0]) * 1
    neighbors = array(_POS)
    edge_label_ids = array(_POS)
    ins_neighbors = array(_POS)
    total = 0
    for position in range(n):
        run = incident[position]
        for nbr, _ in run:
            ins_neighbors.append(nbr)
        run.sort()
        total += len(run)
        offsets.append(total)
        for nbr, lid in run:
            neighbors.append(nbr)
            edge_label_ids.append(lid)
    return offsets, neighbors, edge_label_ids, ins_neighbors


def decode_graph(state: Tuple) -> Graph:
    """Decode :meth:`CompactGraph.encode` output straight to a
    :class:`Graph`, skipping the CSR rebuild.

    This is the unpickle entry for ``Graph`` (its ``__reduce__``
    points here), so it only materialises what a ``Graph`` holds:
    nodes, labels, edges in insertion order, attributes.
    """
    (_, name, _, id_pack, label_id_pack, node_labels, edge_labels,
     edge_pack, node_attrs, edge_attrs) = state
    node_ids = _unpack(id_pack, _ID)
    node_label_ids = _unpack(label_id_pack, _POS)
    edge_list = _unpack(edge_pack, _POS)
    g = Graph(name=name)
    adj: Dict[int, Dict[int, Tuple[int, int]]] = {}
    labels: Dict[int, str] = {}
    for position, node in enumerate(node_ids):
        adj[node] = {}
        labels[node] = node_labels[node_label_ids[position]]
    edge_label_map: Dict[Tuple[int, int], str] = {}
    for at in range(0, len(edge_list), 3):
        u, v = node_ids[edge_list[at]], node_ids[edge_list[at + 1]]
        key = edge_key(u, v)
        adj[u][v] = key
        adj[v][u] = key
        edge_label_map[key] = edge_labels[edge_list[at + 2]]
    g._adj = adj
    g._node_labels = labels
    g._edge_labels = edge_label_map
    if node_attrs:
        g._node_attrs = {u: dict(a) for u, a in node_attrs.items()}
    if edge_attrs:
        g._edge_attrs = {k: dict(a) for k, a in edge_attrs.items()}
    return g


def legacy_pickle_payload(graph: Graph) -> Tuple:
    """The nested-dict state a ``Graph`` used to pickle as.

    Kept only as the measurement baseline for the serialized-size and
    encode/decode gates in ``benchmarks/bench_runner.py`` — nothing
    decodes this shape anymore.
    """
    return (graph.name,
            {u: dict(nbrs) for u, nbrs in graph._adj.items()},
            dict(graph._node_labels),
            {u: dict(a) for u, a in graph._node_attrs.items()},
            dict(graph._edge_labels),
            {k: dict(a) for k, a in graph._edge_attrs.items()})
