"""Undirected labeled graph with node/edge attributes.

This is the data model every subsystem in the library shares: graph
repositories (collections of small graphs), large networks, canned
patterns, and visual queries are all instances of :class:`Graph`.

Design notes
------------
* Nodes are integer ids; each node carries a string *label* (the
  domain type, e.g. a chemical element or an entity type) plus an
  optional attribute dict.
* Edges are unordered pairs with an optional string label and
  attribute dict.  Self-loops and parallel edges are rejected: the
  VQI literature this library reproduces works on simple graphs.
* Adjacency is a dict-of-dicts ``{u: {v: edge_key}}`` which makes
  neighbor iteration, membership tests, and edge-label lookup O(1).
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.errors import (
    DuplicateEdgeError,
    DuplicateNodeError,
    EdgeNotFoundError,
    GraphError,
    NodeNotFoundError,
)

DEFAULT_LABEL = ""


def edge_key(u: int, v: int) -> Tuple[int, int]:
    """Return the canonical (sorted) key for an undirected edge."""
    return (u, v) if u <= v else (v, u)


class Graph:
    """A simple undirected graph with labeled nodes and edges.

    Parameters
    ----------
    name:
        Optional human-readable identifier (e.g. a compound id).

    Examples
    --------
    >>> g = Graph(name="triangle")
    >>> for i in range(3):
    ...     _ = g.add_node(i, label="C")
    >>> g.add_edge(0, 1); g.add_edge(1, 2); g.add_edge(0, 2)
    >>> g.order(), g.size()
    (3, 3)
    """

    # __weakref__ lets repro.perf memoize per-graph fingerprints
    # without pinning graphs in memory
    __slots__ = ("name", "_adj", "_node_labels", "_node_attrs",
                 "_edge_labels", "_edge_attrs", "_version", "_views",
                 "__weakref__")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._adj: Dict[int, Dict[int, Tuple[int, int]]] = {}
        self._node_labels: Dict[int, str] = {}
        self._node_attrs: Dict[int, Dict[str, Any]] = {}
        self._edge_labels: Dict[Tuple[int, int], str] = {}
        self._edge_attrs: Dict[Tuple[int, int], Dict[str, Any]] = {}
        self._version = 0
        # lazily built derived views, tagged with the version they
        # were computed at: (version, {view_name: view})
        self._views: Optional[Tuple[int, Dict[str, Any]]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Optional[int] = None, label: str = DEFAULT_LABEL,
                 **attrs: Any) -> int:
        """Add a node and return its id.

        If ``node`` is None a fresh id (max existing + 1) is allocated.
        Raises :class:`DuplicateNodeError` if the id already exists.
        """
        if node is None:
            node = max(self._adj, default=-1) + 1
        if node in self._adj:
            raise DuplicateNodeError(node)
        self._adj[node] = {}
        self._node_labels[node] = label
        if attrs:
            self._node_attrs[node] = dict(attrs)
        self._version += 1
        return node

    def add_edge(self, u: int, v: int, label: str = DEFAULT_LABEL,
                 **attrs: Any) -> Tuple[int, int]:
        """Add an undirected edge between existing nodes ``u`` and ``v``.

        Returns the canonical edge key.  Self-loops and duplicate edges
        raise :class:`GraphError` / :class:`DuplicateEdgeError`.
        """
        if u == v:
            raise GraphError(f"self-loop on node {u!r} is not allowed")
        if u not in self._adj:
            raise NodeNotFoundError(u)
        if v not in self._adj:
            raise NodeNotFoundError(v)
        key = edge_key(u, v)
        if key in self._edge_labels:
            raise DuplicateEdgeError(u, v)
        self._adj[u][v] = key
        self._adj[v][u] = key
        self._edge_labels[key] = label
        if attrs:
            self._edge_attrs[key] = dict(attrs)
        self._version += 1
        return key

    def remove_node(self, node: int) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._adj:
            raise NodeNotFoundError(node)
        for neighbor in list(self._adj[node]):
            self.remove_edge(node, neighbor)
        del self._adj[node]
        del self._node_labels[node]
        self._node_attrs.pop(node, None)
        self._version += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the edge between ``u`` and ``v``."""
        key = edge_key(u, v)
        if key not in self._edge_labels:
            raise EdgeNotFoundError(u, v)
        del self._adj[u][v]
        del self._adj[v][u]
        del self._edge_labels[key]
        self._edge_attrs.pop(key, None)
        self._version += 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def order(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    def size(self) -> int:
        """Number of edges."""
        return len(self._edge_labels)

    def nodes(self) -> Iterator[int]:
        """Iterate over node ids."""
        return iter(self._adj)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over canonical edge keys."""
        return iter(self._edge_labels)

    def has_node(self, node: int) -> bool:
        return node in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        return edge_key(u, v) in self._edge_labels

    def neighbors(self, node: int) -> Iterator[int]:
        """Iterate over the neighbors of ``node``."""
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return iter(self._adj[node])

    def degree(self, node: int) -> int:
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return len(self._adj[node])

    def node_label(self, node: int) -> str:
        if node not in self._node_labels:
            raise NodeNotFoundError(node)
        return self._node_labels[node]

    def set_node_label(self, node: int, label: str) -> None:
        if node not in self._node_labels:
            raise NodeNotFoundError(node)
        self._node_labels[node] = label
        self._version += 1

    def edge_label(self, u: int, v: int) -> str:
        key = edge_key(u, v)
        if key not in self._edge_labels:
            raise EdgeNotFoundError(u, v)
        return self._edge_labels[key]

    def set_edge_label(self, u: int, v: int, label: str) -> None:
        key = edge_key(u, v)
        if key not in self._edge_labels:
            raise EdgeNotFoundError(u, v)
        self._edge_labels[key] = label
        self._version += 1

    def node_attrs(self, node: int) -> Dict[str, Any]:
        """Return the (mutable) attribute dict of ``node``."""
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return self._node_attrs.setdefault(node, {})

    def edge_attrs(self, u: int, v: int) -> Dict[str, Any]:
        """Return the (mutable) attribute dict of edge ``(u, v)``."""
        key = edge_key(u, v)
        if key not in self._edge_labels:
            raise EdgeNotFoundError(u, v)
        return self._edge_attrs.setdefault(key, {})

    def node_labels(self) -> Mapping[int, str]:
        """Read-only view of the node-label map."""
        return dict(self._node_labels)

    def edge_labels(self) -> Mapping[Tuple[int, int], str]:
        """Read-only view of the edge-label map."""
        return dict(self._edge_labels)

    def label_multiset(self) -> Dict[str, int]:
        """Count of node labels, used as a cheap similarity signature."""
        counts: Dict[str, int] = {}
        for label in self._node_labels.values():
            counts[label] = counts.get(label, 0) + 1
        return counts

    def density(self) -> float:
        """Edge density in [0, 1]; 0 for graphs with < 2 nodes."""
        n = self.order()
        if n < 2:
            return 0.0
        return 2.0 * self.size() / (n * (n - 1))

    def version(self) -> int:
        """Monotonic mutation counter (structure or label changes).

        Lets caches detect in-place modification: a memoized value
        tagged with an older version is stale.  Attribute-dict edits
        do not bump it — attributes take no part in matching.
        """
        return self._version

    def degree_sequence(self) -> List[int]:
        """Sorted (descending) degree sequence."""
        return sorted((len(nbrs) for nbrs in self._adj.values()),
                      reverse=True)

    # ------------------------------------------------------------------
    # cached derived views (invalidated through the version counter)
    # ------------------------------------------------------------------
    def _view_cache(self) -> Dict[str, Any]:
        """The per-version view store; stale stores are discarded.

        Views are derived read-only structures the matching and truss
        kernels iterate millions of times; rebuilding them per call
        would dominate the kernels they exist to speed up.
        """
        if self._views is None or self._views[0] != self._version:
            self._views = (self._version, {})
        return self._views[1]

    def adjacency_sets(self) -> Dict[int, FrozenSet[int]]:
        """``{node: frozenset(neighbors)}``, cached per version.

        The frozensets make O(1) membership tests and fast set
        intersection available without re-materialising neighbor
        iterators in hot loops.  Treat the returned mapping as
        read-only; it is shared between callers until the graph's
        next mutation.
        """
        views = self._view_cache()
        cached = views.get("adjacency_sets")
        if cached is None:
            cached = {u: frozenset(nbrs) for u, nbrs in self._adj.items()}
            views["adjacency_sets"] = cached
        return cached

    def label_index(self) -> Dict[str, Tuple[int, ...]]:
        """``{label: (nodes with that label, ...)}``, cached per version.

        Node order within each tuple follows node-insertion order, so
        iteration over a label class is deterministic.
        """
        views = self._view_cache()
        cached = views.get("label_index")
        if cached is None:
            grouped: Dict[str, List[int]] = {}
            for node in self._adj:
                grouped.setdefault(self._node_labels[node], []).append(node)
            cached = {label: tuple(nodes)
                      for label, nodes in grouped.items()}
            views["label_index"] = cached
        return cached

    def compact(self) -> Any:
        """Frozen CSR snapshot of this graph, cached per version.

        See :class:`repro.graph.compact.CompactGraph`: flat int
        arrays (offsets, sorted neighbor positions, interned label
        tables) for slice-based hot loops and cheap pickling.  Like
        every view, it is rebuilt lazily after a mutation; treat it
        as read-only and never mutate the graph while iterating it.
        """
        views = self._view_cache()
        cached = views.get("compact")
        if cached is None:
            # local import: repro.graph.compact imports Graph
            from repro.graph.compact import CompactGraph
            cached = CompactGraph.from_graph(self)
            views["compact"] = cached
        return cached

    def neighbor_label_counts(self) -> Dict[int, Dict[str, int]]:
        """``{node: {label: count of neighbors with label}}``, cached.

        This is the neighborhood signature the matching kernel prunes
        candidate pools with: a target node whose neighborhood lacks a
        label the pattern node's neighborhood requires can never be an
        image of that pattern node.
        """
        views = self._view_cache()
        cached = views.get("neighbor_label_counts")
        if cached is None:
            cached = {}
            for u, nbrs in self._adj.items():
                counts: Dict[str, int] = {}
                for v in nbrs:
                    label = self._node_labels[v]
                    counts[label] = counts.get(label, 0) + 1
                cached[u] = counts
            views["neighbor_label_counts"] = cached
        return cached

    # ------------------------------------------------------------------
    # copies and equality helpers
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Graph":
        """Deep-enough copy (attribute dicts are shallow-copied)."""
        g = Graph(name=self.name if name is None else name)
        g._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        g._node_labels = dict(self._node_labels)
        g._node_attrs = {u: dict(a) for u, a in self._node_attrs.items()}
        g._edge_labels = dict(self._edge_labels)
        g._edge_attrs = {k: dict(a) for k, a in self._edge_attrs.items()}
        return g

    def relabeled(self, mapping: Mapping[int, int],
                  name: Optional[str] = None) -> "Graph":
        """Return a copy with node ids renamed through ``mapping``.

        Every node must be mapped and the mapping must be injective.
        """
        if len(set(mapping.values())) != len(mapping):
            raise GraphError("relabeling mapping is not injective")
        g = Graph(name=self.name if name is None else name)
        for u in self._adj:
            if u not in mapping:
                raise GraphError(f"node {u!r} missing from relabeling")
            g.add_node(mapping[u], label=self._node_labels[u],
                       **self._node_attrs.get(u, {}))
        for (u, v), label in self._edge_labels.items():
            g.add_edge(mapping[u], mapping[v], label=label,
                       **self._edge_attrs.get((u, v), {}))
        return g

    def normalized(self, name: Optional[str] = None) -> "Graph":
        """Return a copy with nodes renamed to 0..n-1 (sorted order)."""
        mapping = {u: i for i, u in enumerate(sorted(self._adj))}
        return self.relabeled(mapping, name=name)

    def same_as(self, other: "Graph") -> bool:
        """Exact equality of structure and labels (not isomorphism)."""
        return (self._node_labels == other._node_labels
                and self._edge_labels == other._edge_labels)

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __reduce__(self):
        """Pickle through the compact wire format.

        Workers in a process pool receive graphs per item; shipping
        the flat byte buffers of :meth:`compact` instead of the
        nested adjacency dicts cuts the payload several-fold and
        decodes in one pass.  The compact view is cached per version,
        so repeated pickles of an unchanged graph re-use one
        snapshot.  Round trip is lossless including insertion order
        (see ``repro.graph.compact.decode_graph``).
        """
        from repro.graph.compact import decode_graph
        return (decode_graph, (self.compact().encode(),))

    def __contains__(self, node: int) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return f"<Graph{tag} n={self.order()} m={self.size()}>"


def build_graph(node_labels: Iterable[Tuple[int, str]],
                edges: Iterable[Tuple[int, int]] = (),
                labeled_edges: Iterable[Tuple[int, int, str]] = (),
                name: str = "") -> Graph:
    """Build a graph in one call.

    Parameters
    ----------
    node_labels:
        Iterable of ``(node_id, label)`` pairs.
    edges:
        Unlabeled edges as ``(u, v)`` pairs.
    labeled_edges:
        Edges as ``(u, v, label)`` triples.
    """
    g = Graph(name=name)
    for node, label in node_labels:
        g.add_node(node, label=label)
    for u, v in edges:
        g.add_edge(u, v)
    for u, v, label in labeled_edges:
        g.add_edge(u, v, label=label)
    return g
