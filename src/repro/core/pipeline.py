"""The unified selection-pipeline API.

CATAPULT, TATTOO, and MIDAS grew mutually inconsistent entry points
(budget positional here, config class there, four disconnected stats
endpoints).  This module is the one front door the paper's modular
framing argues for: a shared :class:`PipelineConfig` carrying the
cross-pipeline surface (budget, seed, workers, use_cache, trace,
weights, max_embeddings) plus a per-pipeline ``options`` mapping, a
common :class:`PipelineResult` protocol every selection result
satisfies (``.patterns`` / ``.stats`` / ``.trace``), and runners::

    from repro.core.pipeline import PipelineConfig, run_selection

    config = PipelineConfig(budget=PatternBudget(8, 4, 8), seed=7,
                            workers=4, trace=True)
    result = run_selection(data, config)   # CATAPULT or TATTOO
    print(result.stats["timings"])         # stage wall times
    print(result.trace)                    # hierarchical span record

The legacy keyword signatures (``select_canned_patterns(repo, budget,
CatapultConfig(...))`` and friends) still work as deprecation shims
that forward here; new code passes a :class:`PipelineConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Protocol, Sequence, Union, \
    runtime_checkable

from repro.catapult.pipeline import CatapultConfig, CatapultResult, \
    _run_catapult
from repro.errors import PipelineError
from repro.graph.graph import Graph
from repro.midas.maintenance import Midas, MidasConfig
from repro.patterns.base import PatternBudget, PatternSet
from repro.patterns.scoring import DEFAULT_WEIGHTS, ScoreWeights
from repro.tattoo.pipeline import TattooConfig, TattooResult, _run_tattoo

#: The config fields every selection pipeline shares; per-pipeline
#: config classes map these 1:1 in ``from_pipeline``.
SHARED_PIPELINE_FIELDS = ("seed", "workers", "use_cache", "weights",
                          "max_embeddings", "trace", "deadline_s",
                          "max_retries")


@dataclass(frozen=True)
class PipelineConfig:
    """The shared tunables of every selection pipeline.

    ``budget`` is the display budget the selection fills; ``seed``
    roots all randomness; ``workers`` fans hot stages over
    :func:`repro.perf.pmap` (``None`` reads ``REPRO_WORKERS``);
    ``use_cache`` toggles the shared VF2 match cache; ``trace``
    captures a hierarchical :mod:`repro.obs` trace for the run even
    when ``REPRO_TRACE`` is unset.  Pipeline-specific knobs (for
    example CATAPULT's ``walks_per_cluster`` or TATTOO's
    ``truss_threshold``) ride in ``options`` and are validated
    against the chosen pipeline's config class.

    ``deadline_s`` puts the whole run under a wall-clock budget
    (:class:`repro.resilience.Deadline`): stages stop at loop
    boundaries once it expires and the pipeline returns its
    best-so-far pattern set with ``result.degraded = True`` and a
    per-stage completion report — it never raises.  ``max_retries``
    is the per-item retry count failing :func:`repro.perf.pmap` work
    items get before being skipped and recorded.
    """

    budget: Optional[PatternBudget] = None
    seed: int = 0
    workers: Optional[int] = None
    use_cache: bool = True
    trace: bool = False
    weights: ScoreWeights = DEFAULT_WEIGHTS
    max_embeddings: int = 30
    deadline_s: Optional[float] = None
    max_retries: int = 0
    options: Mapping[str, object] = field(default_factory=dict)

    def with_options(self, **options: object) -> "PipelineConfig":
        """Copy with extra pipeline-specific options merged in."""
        merged = dict(self.options)
        merged.update(options)
        return replace(self, options=merged)

    def require_budget(self) -> PatternBudget:
        if self.budget is None:
            raise PipelineError(
                "PipelineConfig.budget is required to run a selection "
                "pipeline (pass budget=PatternBudget(...))")
        return self.budget


@runtime_checkable
class PipelineResult(Protocol):
    """What every selection pipeline hands back.

    ``patterns`` is the selected canned-pattern set; ``stats`` a flat
    dict of run statistics (stage timings, candidate counts, score);
    ``trace`` the hierarchical span record of the run, or ``None``
    when tracing was off; ``degraded`` is True when any stage stopped
    short (deadline expiry, skipped work items) — the per-stage
    detail lives in ``stats["completion"]``.
    """

    patterns: PatternSet

    @property
    def stats(self) -> Dict[str, object]:
        ...

    @property
    def trace(self) -> Optional[Dict[str, object]]:
        ...

    @property
    def degraded(self) -> bool:
        ...


def run_catapult(repository: Sequence[Graph],
                 config: Optional[PipelineConfig] = None
                 ) -> CatapultResult:
    """CATAPULT canned-pattern selection over a repository."""
    config = config or PipelineConfig()
    return _run_catapult(repository, config.require_budget(),
                         CatapultConfig.from_pipeline(config))


def run_tattoo(network: Graph,
               config: Optional[PipelineConfig] = None) -> TattooResult:
    """TATTOO canned-pattern selection on a single large network."""
    config = config or PipelineConfig()
    return _run_tattoo(network, config.require_budget(),
                       TattooConfig.from_pipeline(config))


def run_midas(repository: Sequence[Graph],
              config: Optional[PipelineConfig] = None) -> Midas:
    """A MIDAS maintenance engine initialised over ``repository``."""
    config = config or PipelineConfig()
    config.require_budget()
    return Midas(repository, config)


def run_selection(data: Union[Graph, Sequence[Graph]],
                  config: Optional[PipelineConfig] = None
                  ) -> Union[CatapultResult, TattooResult]:
    """Dispatch on the data shape: one :class:`repro.graph.Graph` is
    a large network (TATTOO); a sequence is a repository (CATAPULT).
    The same rule :func:`repro.vqi.builder.build_vqi` applies."""
    if isinstance(data, Graph):
        return run_tattoo(data, config)
    return run_catapult(data, config)


__all__ = [
    "PipelineConfig",
    "PipelineResult",
    "SHARED_PIPELINE_FIELDS",
    "run_catapult",
    "run_midas",
    "run_selection",
    "run_tattoo",
    "CatapultConfig",
    "CatapultResult",
    "MidasConfig",
    "TattooConfig",
    "TattooResult",
]
