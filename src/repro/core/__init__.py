"""High-level API: data-driven VQI construction and maintenance.

This is the paper's primary contribution surface — one import gives
the full data-driven workflow::

    from repro.core import build_vqi, PatternBudget

    vqi = build_vqi(my_graphs, PatternBudget(10, min_size=4, max_size=8))
    vqi.query_panel.builder.add_pattern(vqi.pattern_panel.canned[0])
    results = vqi.execute()

Selection pipelines share one configuration surface —
:class:`repro.core.pipeline.PipelineConfig` — and one result protocol
(:class:`repro.core.pipeline.PipelineResult`); see
:mod:`repro.core.pipeline` for the unified runners.
"""

from repro.catapult.pipeline import (
    CatapultConfig,
    CatapultResult,
    select_canned_patterns,
)
from repro.core.pipeline import (
    PipelineConfig,
    PipelineResult,
    run_catapult,
    run_midas,
    run_selection,
    run_tattoo,
)
from repro.midas.maintenance import MaintenanceReport, Midas, MidasConfig
from repro.modular.architecture import ModularPipeline, ModularResult
from repro.patterns.base import Pattern, PatternBudget, PatternSet
from repro.patterns.scoring import ScoreWeights, pattern_set_score
from repro.tattoo.pipeline import (
    TattooConfig,
    TattooResult,
    select_network_patterns,
)
from repro.vqi.builder import (
    VisualQueryInterface,
    build_vqi,
    build_vqi_with_report,
)
from repro.vqi.maintenance import MaintainedVQI, build_maintained_vqi
from repro.vqi.spec import VQISpec

__all__ = [
    "CatapultConfig",
    "CatapultResult",
    "select_canned_patterns",
    "PipelineConfig",
    "PipelineResult",
    "run_catapult",
    "run_midas",
    "run_selection",
    "run_tattoo",
    "MaintenanceReport",
    "Midas",
    "MidasConfig",
    "ModularPipeline",
    "ModularResult",
    "Pattern",
    "PatternBudget",
    "PatternSet",
    "ScoreWeights",
    "pattern_set_score",
    "TattooConfig",
    "TattooResult",
    "select_network_patterns",
    "VisualQueryInterface",
    "build_vqi",
    "build_vqi_with_report",
    "MaintainedVQI",
    "build_maintained_vqi",
    "VQISpec",
]
