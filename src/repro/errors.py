"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Structural misuse of a :class:`repro.graph.Graph`."""


class NodeNotFoundError(GraphError):
    """A referenced node id does not exist in the graph."""

    def __init__(self, node: int) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, u: int, v: int) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class DuplicateNodeError(GraphError):
    """A node id was added twice."""

    def __init__(self, node: int) -> None:
        super().__init__(f"node {node!r} already exists")
        self.node = node


class DuplicateEdgeError(GraphError):
    """An edge was added twice."""

    def __init__(self, u: int, v: int) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) already exists")
        self.edge = (u, v)


class FormatError(ReproError):
    """A serialized graph or VQI spec could not be parsed."""


class BudgetError(ReproError):
    """A pattern-selection budget is malformed or unsatisfiable."""


class PipelineError(ReproError):
    """A pipeline stage received input it cannot process."""


class MaintenanceError(ReproError):
    """A MIDAS maintenance operation was applied to inconsistent state."""
