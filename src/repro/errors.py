"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Structural misuse of a :class:`repro.graph.Graph`."""


class NodeNotFoundError(GraphError):
    """A referenced node id does not exist in the graph."""

    def __init__(self, node: int) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, u: int, v: int) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class DuplicateNodeError(GraphError):
    """A node id was added twice."""

    def __init__(self, node: int) -> None:
        super().__init__(f"node {node!r} already exists")
        self.node = node


class DuplicateEdgeError(GraphError):
    """An edge was added twice."""

    def __init__(self, u: int, v: int) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) already exists")
        self.edge = (u, v)


class FormatError(ReproError):
    """A serialized graph or VQI spec could not be parsed."""


class GraphInputError(FormatError):
    """User-supplied graph data (edge lists, label maps) is malformed.

    Carries file/line context so a bad record in a million-line
    repository dump is findable; subclasses :class:`FormatError` so
    existing ``except FormatError`` call sites keep working.
    """

    def __init__(self, message: str, path: object = None,
                 line: int = 0) -> None:
        location = ""
        if path is not None:
            location = f"{path}:{line}: " if line else f"{path}: "
        super().__init__(f"{location}{message}")
        self.path = str(path) if path is not None else None
        self.line = line


class BudgetError(ReproError):
    """A pattern-selection budget is malformed or unsatisfiable."""


class BudgetExceeded(ReproError):
    """A wall-clock deadline or work budget ran out.

    Raised only by *strict* consumers (:meth:`repro.resilience.
    Deadline.require`); the anytime pipelines never let it escape —
    they degrade and report instead.
    """

    def __init__(self, site: str, elapsed_s: float,
                 budget_s: float) -> None:
        super().__init__(
            f"{site}: budget of {budget_s:.3f}s exceeded "
            f"({elapsed_s:.3f}s elapsed)")
        self.site = site
        self.elapsed_s = elapsed_s
        self.budget_s = budget_s


class WorkerFailure(ReproError):
    """A unit of pipeline work failed (crash, hang timeout, or a
    corrupted result detected in transit).

    ``site`` names the failure point (``"catapult.candidates"``,
    ``"matching.is_subgraph"``), ``key`` the work item (for example a
    pmap item index), ``attempt`` the 0-based attempt that failed, and
    ``kind`` one of ``"raise"``/``"hang"``/``"corrupt"``.
    """

    def __init__(self, site: str, key: object = None, attempt: int = 0,
                 kind: str = "raise", cause: object = None) -> None:
        detail = f" item {key!r}" if key is not None else ""
        origin = f": {cause}" if cause else ""
        super().__init__(
            f"{site}:{detail} attempt {attempt} failed ({kind}){origin}")
        self.site = site
        self.key = key
        self.attempt = attempt
        self.kind = kind
        self.cause = str(cause) if cause is not None else None


class PipelineError(ReproError):
    """A pipeline stage received input it cannot process."""


class MaintenanceError(ReproError):
    """A MIDAS maintenance operation was applied to inconsistent state."""


class OptionError(ReproError, ValueError):
    """An argument or configuration value is invalid.

    Doubly inherits :class:`ValueError` so callers validating with
    ``except ValueError`` keep working, while ``except ReproError``
    catches the whole library taxonomy (the contract reprolint R010
    enforces at raise sites).
    """


class UnknownNameError(ReproError, KeyError):
    """A lookup by name or key referenced something that is not there.

    Doubly inherits :class:`KeyError` for the same compatibility
    reason as :class:`OptionError`.
    """


class StoreError(ReproError):
    """Base class for :mod:`repro.store` durability failures."""


class StoreCorruptionError(StoreError):
    """On-disk store state failed checksum or structural validation.

    Raised when corruption cannot be contained (a bad manifest, a
    segment the manifest references that is missing outright).
    Recoverable damage — a torn WAL tail, a corrupt sealed segment —
    is instead quarantined and surfaced on the
    :class:`repro.store.RecoveryReport`.
    """

    def __init__(self, message: str, path: object = None,
                 detail: object = None) -> None:
        location = f"{path}: " if path is not None else ""
        super().__init__(f"{location}{message}")
        self.path = str(path) if path is not None else None
        self.detail = detail


class StoreWriteError(StoreError):
    """A durable write (append, fsync, or atomic rename) failed.

    The store guarantees that a failed write leaves the on-disk state
    recoverable: either the record never became durable (pre-state)
    or it is complete and checksummed (post-state).
    """

    def __init__(self, message: str, path: object = None) -> None:
        location = f"{path}: " if path is not None else ""
        super().__init__(f"{location}{message}")
        self.path = str(path) if path is not None else None


class SimulatedCrash(ReproError):
    """A chaos-injected hard crash point was reached.

    Raised by store code when a ``torn_write`` or
    ``crash_after_n_records`` disk fault fires in-process (tests);
    the store-smoke harness instead converts the same fault into a
    real ``SIGKILL`` so recovery is exercised against a genuinely
    dead process.
    """

    def __init__(self, site: str, kind: str) -> None:
        super().__init__(f"{site}: simulated crash ({kind})")
        self.site = site
        self.kind = kind


class ServiceError(ReproError):
    """Base class for :mod:`repro.service` request-handling failures.

    Every subclass carries ``status``, the HTTP status code the
    service layer maps it to, so the typed-error→HTTP translation is
    a single table lookup plus this attribute.
    """

    status = 500


class RouteNotFound(ServiceError, KeyError):
    """No route matches the requested method and path."""

    status = 404

    def __init__(self, method: str, path: str) -> None:
        super().__init__(f"no route for {method} {path}")
        self.method = method
        self.path = path


class RateLimited(ServiceError):
    """The request exceeded the service token-bucket rate limit.

    ``retry_after_s`` is the earliest time a retry can succeed (the
    bucket's refill horizon), surfaced as the ``Retry-After`` header.
    """

    status = 429

    def __init__(self, retry_after_s: float) -> None:
        super().__init__(
            f"rate limit exceeded; retry in {retry_after_s:.3f}s")
        self.retry_after_s = retry_after_s


class Overloaded(ServiceError):
    """Admission control shed the request (load or expired deadline).

    ``completion`` carries the :class:`repro.resilience.
    CompletionReport` dict of work done before shedding — for a
    request shed at admission that is an all-zero report, which is
    the point: a 503 body says exactly how much ran (nothing).
    """

    status = 503

    def __init__(self, reason: str,
                 completion: object = None) -> None:
        super().__init__(f"request shed: {reason}")
        self.reason = reason
        self.completion = completion if completion is not None else {}
