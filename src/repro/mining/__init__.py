"""Frequent subgraph mining substrate (FSG/AGM-style)."""

from repro.mining.fsg import (
    FrequentSubgraph,
    mine_frequent_subgraphs,
    top_frequent_subgraphs,
)

__all__ = [
    "FrequentSubgraph",
    "mine_frequent_subgraphs",
    "top_frequent_subgraphs",
]
