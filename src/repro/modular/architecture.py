"""The modular canned-pattern-selection architecture (Tzanikos et al.,
DEXA 2021).

The pipeline is decomposed into four independently swappable stages:

1. **similarity** — pairwise graph similarity / distance;
2. **clustering** — partition the repository on those distances;
3. **merging** — merge each cluster into one continuous graph;
4. **extraction** — extract canned patterns from the merged graphs.

Each stage is a small strategy class registered by name, so
state-of-the-art components can be substituted per deployment — the
architectural claim the paper makes, which experiment E8 ablates.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.catapult.random_walk import generate_candidates
from repro.clustering.features import (
    mine_frequent_trees,
    repository_feature_matrix,
)
from repro.clustering.kmedoids import kmedoids
from repro.clustering.similarity import (
    distance_matrix_from_graphs,
    distance_matrix_from_vectors,
)
from repro.errors import PipelineError
from repro.graph.graph import Graph
from repro.patterns.base import Pattern, PatternBudget, PatternSet
from repro.patterns.index import CoverageIndex
from repro.patterns.scoring import DEFAULT_WEIGHTS, ScoreWeights
from repro.patterns.selection import SetScorer, greedy_select
from repro.summary.closure import build_summary

Matrix = List[List[float]]


# ----------------------------------------------------------------------
# stage implementations
# ----------------------------------------------------------------------


def similarity_feature_cosine(repository: Sequence[Graph],
                              seed: int) -> Matrix:
    """Structural feature vectors + cosine distance."""
    return distance_matrix_from_graphs(repository)


def similarity_frequent_trees(repository: Sequence[Graph],
                              seed: int) -> Matrix:
    """Frequent-subtree vectors + Euclidean distance (CATAPULT-style)."""
    vocabulary = mine_frequent_trees(repository, min_support=2)
    if not vocabulary:
        return [[0.0] * len(repository) for _ in repository]
    matrix = repository_feature_matrix(repository, vocabulary)
    return distance_matrix_from_vectors(matrix, metric="euclidean")


def clustering_kmedoids(distances: Matrix, k: int, seed: int) -> List[int]:
    """PAM-style k-medoids."""
    return kmedoids(distances, k, seed=seed).labels


def clustering_threshold(distances: Matrix, k: int, seed: int) -> List[int]:
    """Greedy leader clustering: assign to the first leader within the
    median pairwise distance, else open a new cluster (k is a soft cap).
    """
    n = len(distances)
    flat = sorted(d for row in distances for d in row if d > 0)
    threshold = flat[len(flat) // 2] if flat else 0.0
    leaders: List[int] = []
    labels = [0] * n
    for i in range(n):
        for idx, leader in enumerate(leaders):
            if distances[i][leader] <= threshold:
                labels[i] = idx
                break
        else:
            if len(leaders) < k:
                leaders.append(i)
                labels[i] = len(leaders) - 1
            else:
                labels[i] = min(range(len(leaders)),
                                key=lambda idx: distances[i][leaders[idx]])
    return labels


def merging_closure(members: Sequence[Graph], seed: int) -> Graph:
    """Iterative graph closure (CSG), flattened to a plain graph."""
    return build_summary(members).to_graph(random.Random(seed))


def merging_disjoint(members: Sequence[Graph], seed: int) -> Graph:
    """Plain disjoint union — the cheapest 'continuous graph'."""
    from repro.graph.operations import disjoint_union
    return disjoint_union(list(members))


def extraction_random_walk(merged: Graph, members: Sequence[Graph],
                           budget: PatternBudget, seed: int
                           ) -> List[Pattern]:
    """Support-blind random walks over the merged graph."""
    summary = build_summary([merged])
    rng = random.Random(seed)
    return generate_candidates(summary, budget, walks=60, rng=rng,
                               source="modular:walk")


def extraction_weighted_walk(merged: Graph, members: Sequence[Graph],
                             budget: PatternBudget, seed: int
                             ) -> List[Pattern]:
    """Support-weighted walks over the members' closure (CATAPULT)."""
    summary = build_summary(list(members))
    rng = random.Random(seed)
    from repro.matching.isomorphism import is_subgraph
    probe = list(members[:8])

    def validator(candidate: Graph) -> bool:
        return any(is_subgraph(candidate, m) for m in probe)

    return generate_candidates(summary, budget, walks=60, rng=rng,
                               source="modular:weighted",
                               validator=validator)


#: stage registries (name -> implementation)
SIMILARITY_STAGES: Dict[str, Callable] = {
    "feature_cosine": similarity_feature_cosine,
    "frequent_trees": similarity_frequent_trees,
}
CLUSTERING_STAGES: Dict[str, Callable] = {
    "kmedoids": clustering_kmedoids,
    "threshold": clustering_threshold,
}
MERGING_STAGES: Dict[str, Callable] = {
    "closure": merging_closure,
    "disjoint": merging_disjoint,
}
EXTRACTION_STAGES: Dict[str, Callable] = {
    "random_walk": extraction_random_walk,
    "weighted_walk": extraction_weighted_walk,
}


class ModularPipeline:
    """A concrete assembly of the four stages.

    Parameters name a registered implementation per stage; unknown
    names raise :class:`repro.errors.PipelineError` immediately.
    """

    def __init__(self, similarity: str = "frequent_trees",
                 clustering: str = "kmedoids", merging: str = "closure",
                 extraction: str = "weighted_walk",
                 clusters: Optional[int] = None, seed: int = 0,
                 weights: ScoreWeights = DEFAULT_WEIGHTS) -> None:
        for name, registry, label in (
                (similarity, SIMILARITY_STAGES, "similarity"),
                (clustering, CLUSTERING_STAGES, "clustering"),
                (merging, MERGING_STAGES, "merging"),
                (extraction, EXTRACTION_STAGES, "extraction")):
            if name not in registry:
                raise PipelineError(
                    f"unknown {label} stage {name!r}; "
                    f"choose from {sorted(registry)}")
        self.similarity = similarity
        self.clustering = clustering
        self.merging = merging
        self.extraction = extraction
        self.clusters = clusters
        self.seed = seed
        self.weights = weights

    def describe(self) -> str:
        return (f"{self.similarity} | {self.clustering} | "
                f"{self.merging} | {self.extraction}")

    def run(self, repository: Sequence[Graph],
            budget: PatternBudget) -> "ModularResult":
        """Execute all four stages plus the final greedy selection."""
        if not repository:
            raise PipelineError("modular pipeline needs a repository")
        from repro.catapult.pipeline import default_cluster_count
        timings: Dict[str, float] = {}

        start = time.perf_counter()
        distances = SIMILARITY_STAGES[self.similarity](repository,
                                                       self.seed)
        timings["similarity"] = time.perf_counter() - start

        start = time.perf_counter()
        k = self.clusters or default_cluster_count(len(repository))
        labels = CLUSTERING_STAGES[self.clustering](distances, k,
                                                    self.seed)
        timings["clustering"] = time.perf_counter() - start

        start = time.perf_counter()
        groups: Dict[int, List[Graph]] = {}
        for graph, label in zip(repository, labels):
            groups.setdefault(label, []).append(graph)
        merged = {label: MERGING_STAGES[self.merging](members, self.seed)
                  for label, members in groups.items()}
        timings["merging"] = time.perf_counter() - start

        start = time.perf_counter()
        candidates: List[Pattern] = []
        seen: set[str] = set()
        for label, members in groups.items():
            for pattern in EXTRACTION_STAGES[self.extraction](
                    merged[label], members, budget, self.seed + label):
                if pattern.code not in seen:
                    seen.add(pattern.code)
                    candidates.append(pattern)
        timings["extraction"] = time.perf_counter() - start

        start = time.perf_counter()
        rng = random.Random(self.seed)
        sample = list(repository)
        if len(sample) > 60:
            sample = rng.sample(sample, 60)
        scorer = SetScorer(CoverageIndex(sample, max_embeddings=30,
                                         size_utility=True),
                           weights=self.weights)
        selection = greedy_select(candidates, budget, scorer)
        timings["selection"] = time.perf_counter() - start

        return ModularResult(selection.patterns, candidates, labels,
                             timings, self.describe(), selection.score)


class ModularResult:
    """Output of one modular-pipeline run."""

    __slots__ = ("patterns", "candidates", "labels", "timings",
                 "configuration", "score")

    def __init__(self, patterns: PatternSet, candidates: List[Pattern],
                 labels: List[int], timings: Dict[str, float],
                 configuration: str, score: float) -> None:
        self.patterns = patterns
        self.candidates = candidates
        self.labels = labels
        self.timings = timings
        self.configuration = configuration
        self.score = score

    def total_time(self) -> float:
        return sum(self.timings.values())

    def __repr__(self) -> str:
        return (f"<ModularResult [{self.configuration}] "
                f"k={len(self.patterns)} score={self.score:.3f}>")
