"""Modular canned-pattern-selection architecture (swappable stages)."""

from repro.modular.architecture import (
    CLUSTERING_STAGES,
    EXTRACTION_STAGES,
    MERGING_STAGES,
    SIMILARITY_STAGES,
    ModularPipeline,
    ModularResult,
)

__all__ = [
    "CLUSTERING_STAGES",
    "EXTRACTION_STAGES",
    "MERGING_STAGES",
    "SIMILARITY_STAGES",
    "ModularPipeline",
    "ModularResult",
]
