"""Deterministic fault injection for resilience testing.

A :class:`FaultPlan` is a seeded, picklable script of failures —
*raise*, *hang*, or *corrupt* — fired at named **sites** threaded
through the library (``"catapult.candidates"`` items inside pmap
workers, ``"matching.is_subgraph"`` calls, ``"distributed.worker"``
and ``"distributed.merge"`` in the simulated cluster).  Installed
with the :func:`chaos` context manager, it lets the test suite assert
the library's resilience contract: every injected failure mode either
*recovers* (retry/serial re-run produce a result byte-identical to
the fault-free run) or *degrades* (a well-formed result with
``degraded=True`` and a completion report) — never a crash, never a
hang.

Two addressing modes keep injection deterministic at every worker
count:

* **keyed** — fire for specific work-item keys while ``attempt <
  fail_attempts``.  Worker-side sites use this: an item's fate
  depends only on its key and attempt number, never on which process
  ran it or in what order.
* **call-counted** — fire at the Nth call of the site (``at_calls``,
  1-based).  Coordinator-side serial sites use this; inside a pmap
  worker each item runs against a fresh zero-counter copy of the
  plan, so "Nth call" means *within that item*.

When no plan is installed every site check is one global-is-None
test, so shipping the hooks in production code paths costs nothing.

A *hang* is simulated as a bounded stall (``hang_s``) followed by a
:class:`repro.errors.WorkerFailure` of kind ``"hang"`` — the same
observable a real watchdog timeout would produce — so the recovery
machinery is exercised without the suite ever actually deadlocking.
A *corrupt* fault replaces the site's result with the
:data:`CORRUPTED` sentinel, modelling a checksum-failed payload that
transport validation (:func:`repro.perf.pmap`, the distributed merge)
detects and converts into an item failure.
"""

from __future__ import annotations

import hashlib
import time
from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, \
    Tuple

from repro.errors import OptionError, WorkerFailure
from repro.obs import metrics

#: Recognised fault kinds.
FAULT_KINDS = ("raise", "hang", "corrupt")

#: Disk-fault kinds understood by :mod:`repro.store` write/read paths.
#: Unlike :data:`FAULT_KINDS` these do not raise here — the store
#: interprets them at the I/O site (write half a record and crash,
#: fail before fsync, return a short read, crash after a durable
#: write) so recovery semantics are exercised where they matter.
DISK_FAULT_KINDS = ("torn_write", "short_read", "fsync_fail",
                    "crash_after_n_records")


class _Corrupted:
    """Sentinel standing in for a corrupted-in-transit result."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<CORRUPTED>"

    def __reduce__(self):
        return (_corrupted_instance, ())


def _corrupted_instance() -> "_Corrupted":
    return CORRUPTED


CORRUPTED = _Corrupted()


def is_corrupt(value: object) -> bool:
    """True when ``value`` is the corruption sentinel."""
    return value is CORRUPTED


class FaultSpec:
    """One scripted failure at a named site.

    Parameters
    ----------
    site:
        The injection point name this spec arms.
    kind:
        ``"raise"`` | ``"hang"`` | ``"corrupt"``.
    keys:
        Work-item keys to hit (keyed mode); ``None`` hits every key.
    fail_attempts:
        Fire while ``attempt < fail_attempts`` — ``1`` means the
        first attempt fails and the retry succeeds (recovery path),
        a large value means every attempt fails (degradation path).
    at_calls:
        1-based call numbers of the site to hit instead of keyed
        matching (call-counted mode).
    one_in:
        Probabilistic mode: fire on calls whose seeded hash lands in
        ``1/one_in`` of the space — deterministic for a given plan
        seed, site, and call number.
    hang_s:
        Stall length for ``kind="hang"``.
    """

    __slots__ = ("site", "kind", "keys", "fail_attempts", "at_calls",
                 "one_in", "hang_s", "message")

    def __init__(self, site: str, kind: str = "raise",
                 keys: Optional[Iterable[object]] = None,
                 fail_attempts: int = 1,
                 at_calls: Optional[Iterable[int]] = None,
                 one_in: Optional[int] = None,
                 hang_s: float = 0.05,
                 message: str = "injected fault") -> None:
        if kind not in FAULT_KINDS and kind not in DISK_FAULT_KINDS:
            raise OptionError(
                f"unknown fault kind {kind!r}; expected one of "
                f"{FAULT_KINDS + DISK_FAULT_KINDS}")
        self.site = site
        self.kind = kind
        self.keys: Optional[FrozenSet[object]] = \
            frozenset(keys) if keys is not None else None
        self.fail_attempts = fail_attempts
        self.at_calls: Optional[FrozenSet[int]] = \
            frozenset(at_calls) if at_calls is not None else None
        self.one_in = one_in
        self.hang_s = hang_s
        self.message = message

    def matches(self, call: int, key: object, attempt: int,
                seed: int) -> bool:
        """Does this spec fire for the given site event?"""
        if self.at_calls is not None:
            return call in self.at_calls
        if self.one_in is not None:
            payload = f"{seed}:{self.site}:{call}".encode("ascii")
            digest = hashlib.sha256(payload).digest()
            return int.from_bytes(digest[:8], "big") % self.one_in == 0
        if self.keys is not None and key not in self.keys:
            return False
        return attempt < self.fail_attempts

    def __repr__(self) -> str:
        mode = (f"at_calls={sorted(self.at_calls)}"
                if self.at_calls is not None
                else f"one_in={self.one_in}" if self.one_in is not None
                else f"keys={self.keys and sorted(self.keys)} "
                     f"fail_attempts={self.fail_attempts}")
        return f"<FaultSpec {self.site} {self.kind} {mode}>"


class FaultPlan:
    """A seeded script of :class:`FaultSpec` entries plus per-site
    call counters.  Plans are plain picklable state: :func:`repro.
    perf.pmap` ships a :meth:`fresh` zero-counter copy to each work
    item, so injection decisions depend only on (seed, site, key,
    attempt, within-item call number)."""

    __slots__ = ("specs", "seed", "calls", "fired")

    def __init__(self, specs: Iterable[FaultSpec] = (),
                 seed: int = 0) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self.seed = seed
        self.calls: Dict[str, int] = {}
        self.fired: List[Tuple[str, object, int, str]] = []

    def fresh(self) -> "FaultPlan":
        """A copy with zeroed call counters (per-work-item scope)."""
        return FaultPlan(self.specs, seed=self.seed)

    def sites(self) -> FrozenSet[str]:
        return frozenset(spec.site for spec in self.specs)

    def fire(self, site: str, key: object = None,
             attempt: int = 0) -> bool:
        """Consult the plan at a site; returns True to corrupt the
        site's result, raises :class:`WorkerFailure` for raise/hang
        faults, and is False when nothing is scripted here."""
        call = self.calls.get(site, 0) + 1
        self.calls[site] = call
        for spec in self.specs:
            if spec.site != site or spec.kind in DISK_FAULT_KINDS:
                continue
            if not spec.matches(call, key, attempt, self.seed):
                continue
            self.fired.append((site, key, attempt, spec.kind))
            metrics.inc("resilience.chaos.injected")
            metrics.inc(f"resilience.chaos.injected.{spec.kind}")
            if spec.kind == "corrupt":
                return True
            if spec.kind == "hang":
                time.sleep(spec.hang_s)
                raise WorkerFailure(
                    site, key=key, attempt=attempt, kind="hang",
                    cause=f"{spec.message} (stalled {spec.hang_s}s, "
                          "watchdog timeout)")
            raise WorkerFailure(site, key=key, attempt=attempt,
                                kind="raise", cause=spec.message)
        return False

    def fire_disk(self, site: str, key: object = None) -> Optional[str]:
        """Consult the plan at a disk-I/O site.

        Returns the :data:`DISK_FAULT_KINDS` entry scripted for this
        site event (the store interprets it at the I/O call), or
        ``None`` when nothing is scripted.  Shares the per-site call
        counter with :meth:`fire` so ``at_calls`` addressing stays
        deterministic across mixed plans.
        """
        call = self.calls.get(site, 0) + 1
        self.calls[site] = call
        for spec in self.specs:
            if spec.site != site or spec.kind not in DISK_FAULT_KINDS:
                continue
            if not spec.matches(call, key, attempt=0, seed=self.seed):
                continue
            self.fired.append((site, key, 0, spec.kind))
            metrics.inc("resilience.chaos.injected")
            metrics.inc(f"resilience.chaos.injected.{spec.kind}")
            return spec.kind
        return None

    def __repr__(self) -> str:
        return (f"<FaultPlan seed={self.seed} specs={len(self.specs)} "
                f"fired={len(self.fired)}>")


#: The process-installed plan; ``None`` means chaos is off and every
#: site check is a single comparison.
_ACTIVE: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, if any."""
    return _ACTIVE


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` (or clear with ``None``); returns the
    previous plan so callers can restore it.  :func:`repro.perf.pmap`
    workers use this directly; tests should prefer :func:`chaos`."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    return previous


@contextmanager
def chaos(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install a fault plan for the duration of the block."""
    previous = install(plan)
    try:
        yield plan
    finally:
        install(previous)


def site(name: str, key: object = None, attempt: int = 0) -> bool:
    """Production-code injection hook.

    Returns True when the caller's result must be replaced with
    :data:`CORRUPTED`; raises :class:`WorkerFailure` for scripted
    raise/hang faults; False (after one global comparison) when chaos
    is off.
    """
    if _ACTIVE is None:
        return False
    return _ACTIVE.fire(name, key=key, attempt=attempt)


def disk_site(name: str, key: object = None) -> Optional[str]:
    """Disk-I/O injection hook for :mod:`repro.store`.

    Returns the scripted :data:`DISK_FAULT_KINDS` entry for this site
    event or ``None`` (after one global comparison) when chaos is off.
    The *caller* interprets the kind at the I/O boundary — e.g. a
    ``torn_write`` means "write a prefix of the payload, then crash".
    """
    if _ACTIVE is None:
        return None
    return _ACTIVE.fire_disk(name, key=key)
