"""Wall-clock budgets and per-stage completion accounting.

A :class:`Deadline` turns every selection pipeline into an *anytime
algorithm*: stages poll it at loop boundaries and, once it expires,
stop early with whatever they have instead of raising.  The contract
every instrumented loop follows is **at least one unit, then check** —
a pipeline under an absurdly tight budget still returns a valid,
non-empty result, just a degraded one.

A :class:`CompletionReport` is the flip side: each stage records how
much of its work it finished, so a degraded run says exactly *what*
was cut, not merely that something was.  Reports flatten into the
``stats`` dict of every :class:`repro.core.pipeline.PipelineResult`
and degradation events are mirrored as ``resilience.*`` counters in
:mod:`repro.obs.metrics`.

Deadlines are plain picklable state (an absolute ``time.monotonic``
expiry, which on Linux is comparable across processes on the same
machine), so they survive the trip into :func:`repro.perf.pmap`
workers.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.errors import BudgetExceeded
from repro.obs import metrics


class Deadline:
    """A wall-clock budget checked cooperatively at loop boundaries.

    ``Deadline.start(None)`` gives the unbounded deadline: every
    check is a single attribute comparison and never expires, so the
    instrumented pipelines cost nothing when no budget is set.
    """

    __slots__ = ("seconds", "_started", "_expires")

    def __init__(self, seconds: Optional[float] = None,
                 started: Optional[float] = None) -> None:
        if seconds is not None and seconds < 0:
            raise BudgetExceeded("deadline", 0.0, seconds)
        self.seconds = seconds
        self._started = time.monotonic() if started is None else started
        self._expires = (None if seconds is None
                         else self._started + seconds)

    @classmethod
    def start(cls, seconds: Optional[float]) -> "Deadline":
        """A deadline running from now; ``None`` never expires."""
        return cls(seconds)

    def elapsed(self) -> float:
        return time.monotonic() - self._started

    def remaining(self) -> float:
        """Seconds left (``inf`` when unbounded, never negative)."""
        if self._expires is None:
            return float("inf")
        return max(0.0, self._expires - time.monotonic())

    def expired(self) -> bool:
        if self._expires is None:
            return False
        return time.monotonic() >= self._expires

    def check(self, site: str) -> bool:
        """Loop-boundary poll: True when the budget is gone.

        Expiry observations are counted under
        ``resilience.deadline.expired`` (and per-site) so degraded
        runs are visible in a metrics snapshot.
        """
        if not self.expired():
            return False
        metrics.inc("resilience.deadline.expired")
        metrics.inc(f"resilience.deadline.expired.{site}")
        return True

    def require(self, site: str) -> None:
        """Strict variant: raise :class:`BudgetExceeded` on expiry."""
        if self.expired():
            assert self.seconds is not None
            raise BudgetExceeded(site, self.elapsed(), self.seconds)

    def __repr__(self) -> str:
        if self.seconds is None:
            return "<Deadline unbounded>"
        return (f"<Deadline {self.seconds:.3f}s "
                f"remaining={self.remaining():.3f}s>")


#: The shared unbounded deadline used when no budget is configured.
UNBOUNDED = Deadline(None)


class StageStatus:
    """How far one pipeline stage got before finishing or stopping."""

    __slots__ = ("stage", "done", "total", "complete", "note")

    def __init__(self, stage: str, done: int, total: int,
                 complete: bool, note: str = "") -> None:
        self.stage = stage
        self.done = done
        self.total = total
        self.complete = complete
        self.note = note

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"done": self.done,
                                   "total": self.total,
                                   "complete": self.complete}
        if self.note:
            data["note"] = self.note
        return data

    def __repr__(self) -> str:
        state = "ok" if self.complete else "partial"
        return (f"<StageStatus {self.stage} {self.done}/{self.total} "
                f"{state}>")


class CompletionReport:
    """Per-stage completion of one pipeline run, in stage order.

    A run is *degraded* when any stage stopped short of its work
    (deadline expiry, skipped work items, quarantined inputs).  Each
    incomplete stage bumps ``resilience.stage.incomplete`` so
    degradation is observable without holding the report.
    """

    __slots__ = ("stages",)

    def __init__(self) -> None:
        self.stages: List[StageStatus] = []

    def record(self, stage: str, done: int, total: int,
               complete: Optional[bool] = None,
               note: str = "") -> StageStatus:
        """Record one stage; ``complete`` defaults to done == total."""
        if complete is None:
            complete = done >= total
        status = StageStatus(stage, done, total, complete, note)
        self.stages.append(status)
        if not complete:
            metrics.inc("resilience.stage.incomplete")
            metrics.inc(f"resilience.stage.incomplete.{stage}")
        return status

    @property
    def degraded(self) -> bool:
        return any(not status.complete for status in self.stages)

    def incomplete_stages(self) -> List[str]:
        return [status.stage for status in self.stages
                if not status.complete]

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Stage name -> status dict (repeated stages keep the last)."""
        return {status.stage: status.as_dict()
                for status in self.stages}

    def __repr__(self) -> str:
        state = "degraded" if self.degraded else "complete"
        return f"<CompletionReport {len(self.stages)} stages {state}>"
