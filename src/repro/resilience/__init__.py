"""repro.resilience: deadlines, degradation accounting, fault injection.

The robustness layer the scaling story requires (stdlib-only, like
:mod:`repro.perf` and :mod:`repro.obs`): selection pipelines that run
unattended against arbitrary user-supplied graphs must degrade
gracefully — a crashed worker, a malformed input, or an overrun time
budget yields a *well-formed degraded result*, never a lost run.

* :class:`Deadline` — a wall-clock budget polled at loop boundaries;
  threaded through ``PipelineConfig.deadline_s`` it turns CATAPULT,
  TATTOO, and MIDAS into anytime algorithms ("at least one unit,
  then check").
* :class:`CompletionReport` / :class:`StageStatus` — per-stage
  completion accounting behind every ``PipelineResult.degraded``
  flag.
* :class:`FaultPlan` / :class:`FaultSpec` / :func:`chaos` — the
  deterministic fault-injection harness the chaos test suite drives
  (raise / hang / corrupt at named sites, keyed or call-counted).

Fault-tolerant execution itself lives in :func:`repro.perf.pmap`
(per-item retry, serial re-run, skip-with-record); this package
supplies the budget, the bookkeeping, and the failure script.
"""

from repro.resilience.chaos import (
    CORRUPTED,
    DISK_FAULT_KINDS,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    active_plan,
    chaos,
    disk_site,
    install,
    is_corrupt,
    site,
)
from repro.resilience.deadline import (
    UNBOUNDED,
    CompletionReport,
    Deadline,
    StageStatus,
)

__all__ = [
    "CORRUPTED",
    "CompletionReport",
    "DISK_FAULT_KINDS",
    "Deadline",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "StageStatus",
    "UNBOUNDED",
    "active_plan",
    "chaos",
    "disk_site",
    "install",
    "is_corrupt",
    "site",
]
