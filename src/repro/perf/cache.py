"""Canonical-code-keyed memoization of subgraph-matching results.

VF2 searches dominate every selection loop: greedy selection, MIDAS
multi-scan swapping, and candidate validation all ask "does pattern p
embed in graph G / which edges of G does p cover" for the same
(p, G) pairs over and over — across rounds, across scans, and across
:class:`repro.patterns.index.CoverageIndex` instances.  The
:class:`MatchCache` memoizes those answers with keys that survive
object churn:

* the *pattern* side of the key is its canonical code, so isomorphic
  patterns (regardless of node numbering or object identity) share
  one entry;
* the *graph* side is a content fingerprint (SHA-256 over the sorted
  node/edge label lists), memoized per object via weak references, so
  re-sampled or copied graphs with identical content also share.

Entries are bounded (LRU eviction) and instrumented: hits, misses,
evictions, and the number of underlying VF2 invocations are all
observable through :func:`cache_stats` / :func:`vf2_calls`.  Cached
and uncached execution are interchangeable by construction — every
cached value is exactly what the wrapped matcher would recompute.

Merging across workers
----------------------
A process-pool worker has its own global cache, so naively it starts
cold on every run and its hits never flow back.  The cache is
therefore *mergeable*: under :meth:`MatchCache.recording` every
logical cache access appends one entry to a :class:`CacheDelta` — a
hit logs ``(key, value)`` at lookup, a miss logs ``(key, value)``
when the computed result is stored — while the local counters stay
untouched.  The coordinator replays deltas in work-item input order
with :meth:`MatchCache.merge_delta`: a logged key already present
counts as a hit, an absent one counts as a miss and inserts the
shipped value.  Replay is exactly the access sequence a serial run
would perform, so hit/miss counts are identical at every worker
count — the invariance ``benchmarks/bench_runner.py`` gates on.

The protocol is sound because each ``cached_*`` helper performs no
nested cache access between a missed lookup and its store: one
logical access, one log entry, whatever the recording cache already
contained.  Keep it that way when adding helpers.

:func:`repro.perf.pmap` drives both ends (``cache_merge=``): workers
record per item, ship deltas next to their trace captures, and are
seeded at startup with :meth:`MatchCache.hot_entries` so
engine-lifetime caches (MIDAS) keep paying off inside the pool.
"""

from __future__ import annotations

import hashlib
import warnings
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple
from weakref import WeakKeyDictionary

from repro.errors import OptionError
from repro.graph.graph import Graph
from repro.matching.canonical import canonical_code
from repro.matching.isomorphism import (
    covered_edges,
    find_embedding,
    reset_kernel_stats,
)
from repro.resilience.chaos import site as chaos_site

EdgeSet = FrozenSet[Tuple[int, int]]

#: Default entry bound for the process-global cache.
DEFAULT_MAX_ENTRIES = 50_000

_fingerprints: "WeakKeyDictionary[Graph, Tuple[int, str]]" = \
    WeakKeyDictionary()

#: Count of actual (non-memoized) VF2 matcher invocations made
#: through this module, cached or not — the instrumentation the
#: fewer-calls-with-cache tests assert against.
_vf2_counter = {"calls": 0}


def vf2_calls() -> int:
    """Number of real VF2 searches performed via this module."""
    return _vf2_counter["calls"]


def reset_vf2_calls() -> None:
    _vf2_counter["calls"] = 0


def _compute_fingerprint(graph: Graph) -> str:
    digest = hashlib.sha256()
    for node in sorted(graph.nodes()):
        digest.update(f"n{node}:{graph.node_label(node)};".encode())
    for u, v in sorted(graph.edges()):
        digest.update(f"e{u},{v}:{graph.edge_label(u, v)};".encode())
    return digest.hexdigest()


def graph_fingerprint(graph: Graph) -> str:
    """Content fingerprint of a graph (equal iff same labeled content).

    Memoized per graph object through a weak reference and the graph's
    mutation :meth:`~repro.graph.graph.Graph.version`, so repeated
    lookups against large networks cost O(1) until the graph is
    modified in place (at which point the memo self-invalidates).
    Note this is *not* isomorphism-invariant (node ids participate) —
    the isomorphism-invariant key is the pattern-side canonical code.
    """
    version = graph.version()
    cached = _fingerprints.get(graph)
    if cached is not None and cached[0] == version:
        return cached[1]
    fingerprint = _compute_fingerprint(graph)
    _fingerprints[graph] = (version, fingerprint)
    return fingerprint


class CacheDelta:
    """Ordered, picklable log of one work item's cache accesses.

    One entry per logical access (see the module docstring's merge
    protocol): replaying the entries against the coordinator's cache
    reproduces the exact hit/miss sequence a serial run would have
    seen.  Ships back from pool workers next to trace captures.
    """

    __slots__ = ("entries",)

    def __init__(self, entries: Optional[List[Tuple[Tuple, object]]] = None
                 ) -> None:
        self.entries: List[Tuple[Tuple, object]] = \
            [] if entries is None else entries

    def record(self, key: Tuple, value: object) -> None:
        self.entries.append((key, value))

    def __len__(self) -> int:
        return len(self.entries)

    def __getstate__(self):
        return self.entries

    def __setstate__(self, entries) -> None:
        self.entries = entries

    def __repr__(self) -> str:
        return f"<CacheDelta accesses={len(self.entries)}>"


class MatchCache:
    """Bounded LRU cache for match results with hit/miss counters."""

    __slots__ = ("max_entries", "_entries", "hits", "misses", "evictions",
                 "_recorder")

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise OptionError("cache needs room for at least one entry")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # active CacheDelta while inside recording(); counters are
        # suspended then — the coordinator's replay does the counting
        self._recorder: Optional[CacheDelta] = None

    def lookup(self, key: Tuple) -> Tuple[bool, object]:
        """(found, value); found misses are counted."""
        if key in self._entries:
            self._entries.move_to_end(key)
            if self._recorder is not None:
                self._recorder.record(key, self._entries[key])
            else:
                self.hits += 1
            return True, self._entries[key]
        if self._recorder is None:
            self.misses += 1
        return False, None

    def store(self, key: Tuple, value: object) -> None:
        recorder = self._recorder
        if recorder is not None:
            recorder.record(key, value)
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            if recorder is None:
                self.evictions += 1

    @contextmanager
    def recording(self, delta: CacheDelta) -> Iterator[CacheDelta]:
        """Log every access into ``delta``, counters suspended.

        Accesses still read and warm this cache (a worker reuses its
        own results across the items it processes); only the
        *accounting* is deferred to :meth:`merge_delta` replay on the
        coordinator, which is what keeps hit rates worker-count
        invariant.
        """
        previous = self._recorder
        self._recorder = delta
        try:
            yield delta
        finally:
            self._recorder = previous

    def merge_delta(self, delta: CacheDelta) -> Dict[str, int]:
        """Replay a worker's access log against this cache.

        Call in work-item input order.  A logged key that is already
        present counts as a hit (whatever the worker locally saw); an
        absent key counts as a miss and adopts the shipped value.
        Returns the hit/miss counts this delta contributed.
        """
        entries = self._entries
        hits = misses = 0
        for key, value in delta.entries:
            if key in entries:
                entries.move_to_end(key)
                hits += 1
            else:
                entries[key] = value
                misses += 1
                while len(entries) > self.max_entries:
                    entries.popitem(last=False)
                    self.evictions += 1
        self.hits += hits
        self.misses += misses
        return {"hits": hits, "misses": misses}

    def hot_entries(self, limit: Optional[int] = None
                    ) -> List[Tuple[Tuple, object]]:
        """Most-recently-used ``(key, value)`` pairs, LRU-first.

        The snapshot pool workers are seeded with: bounded by
        ``limit`` (None = everything), ordered so that feeding it to
        :meth:`seed` reproduces this cache's recency order.
        """
        items = list(self._entries.items())
        if limit is not None and len(items) > limit:
            items = items[len(items) - limit:]
        return items

    def seed(self, pairs: List[Tuple[Tuple, object]]) -> None:
        """Silently adopt ``pairs`` (no counter movement).

        Used to warm a worker's cache from the coordinator's hot
        snapshot before any item runs; seeded entries change compute
        cost only, never the merged hit/miss accounting.
        """
        entries = self._entries
        for key, value in pairs:
            entries[key] = value
            entries.move_to_end(key)
        while len(entries) > self.max_entries:
            entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> Dict[str, float]:
        """Counters plus occupancy; ``hit_rate`` in [0, 1]."""
        total = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / total if total else 0.0,
        }

    def __repr__(self) -> str:
        return (f"<MatchCache entries={len(self._entries)} "
                f"hits={self.hits} misses={self.misses}>")


_global_cache = MatchCache()


def get_match_cache() -> MatchCache:
    """The process-global cache most call sites share."""
    return _global_cache


def swap_match_cache(cache: MatchCache) -> MatchCache:
    """Install ``cache`` as the process-global cache; return the old.

    The serial leg of ``pmap``'s merge mode uses this to run items
    against a scratch cache (seeded like a pool worker would be) so
    that ``workers=1`` goes through the exact record-and-replay path
    a pool run does — the counters end up identical by construction.
    Always restore the previous cache in a ``finally``.
    """
    global _global_cache
    previous = _global_cache
    _global_cache = cache
    return previous


def cache_stats() -> Dict[str, float]:
    """Stats of the process-global cache plus the VF2 call counter.

    Deprecated alias: the canonical endpoint is now
    :func:`repro.obs.matching_snapshot` (and the wider
    :func:`repro.obs.snapshot`); this function delegates to it and
    keeps its historical flat dict shape — match-cache counters merged
    with the kernel counters (``feasibility_checks``,
    ``recursive_calls``, ``candidates_pruned``), ``vf2_calls``, and
    the canonical-code memo's hit/miss counters.
    """
    from repro.obs.metrics import matching_snapshot

    warnings.warn(
        "repro.perf.cache_stats() is deprecated; use "
        "repro.obs.snapshot()['matching'] (or "
        "repro.obs.matching_snapshot())",
        DeprecationWarning, stacklevel=2)
    return matching_snapshot()


def clear_match_cache() -> None:
    """Drop all global entries and zero every counter."""
    _global_cache.clear()
    _global_cache.reset_stats()
    reset_vf2_calls()
    reset_kernel_stats()


def cached_covered_edges(pattern: Graph, target: Graph,
                         pattern_code: Optional[str] = None,
                         max_embeddings: Optional[int] = 200,
                         cache: Optional[MatchCache] = None) -> EdgeSet:
    """Memoized :func:`repro.matching.isomorphism.covered_edges`.

    ``pattern_code`` (the pattern's canonical code) is computed when
    not supplied; callers holding a :class:`repro.patterns.base.
    Pattern` should pass ``pattern.code`` to avoid recomputing it.
    ``cache=None`` disables memoization but still counts the VF2 call.
    """
    if cache is None:
        _vf2_counter["calls"] += 1
        return frozenset(covered_edges(pattern, target,
                                       max_embeddings=max_embeddings))
    if pattern_code is None:
        pattern_code = cached_canonical_code(pattern, cache=cache)
    key = ("cov", pattern_code, graph_fingerprint(target), max_embeddings)
    found, value = cache.lookup(key)
    if found:
        return value  # type: ignore[return-value]
    _vf2_counter["calls"] += 1
    result = frozenset(covered_edges(pattern, target,
                                     max_embeddings=max_embeddings))
    cache.store(key, result)
    return result


def cached_is_subgraph(pattern: Graph, target: Graph,
                       pattern_code: Optional[str] = None,
                       induced: bool = False,
                       cache: Optional[MatchCache] = None) -> bool:
    """Memoized :func:`repro.matching.isomorphism.is_subgraph`.

    Carries the same ``"matching.is_subgraph"`` chaos-injection site
    as the raw entry point (fired before any cache access, so a
    scripted fault behaves identically warm or cold): validation
    loops can switch between the raw and cached matcher without
    changing their fault-injection surface.
    """
    chaos_site("matching.is_subgraph")
    if cache is None:
        _vf2_counter["calls"] += 1
        return find_embedding(pattern, target, induced=induced) is not None
    if pattern_code is None:
        pattern_code = cached_canonical_code(pattern, cache=cache)
    key = ("sub", pattern_code, graph_fingerprint(target), induced)
    found, value = cache.lookup(key)
    if found:
        return bool(value)
    _vf2_counter["calls"] += 1
    result = find_embedding(pattern, target, induced=induced) is not None
    cache.store(key, result)
    return result


def cached_canonical_code(graph: Graph,
                          cache: Optional[MatchCache] = None) -> str:
    """Memoized :func:`repro.matching.canonical.canonical_code`.

    Keyed by the content fingerprint: identical re-sampled subgraphs
    (common in walk/extraction dedup loops) skip the backtracking
    search entirely; isomorphic-but-renumbered graphs still go through
    it once each, after which their shared code unifies the rest of
    the cache.
    """
    if cache is None:
        cache = _global_cache
    key = ("canon", graph_fingerprint(graph))
    found, value = cache.lookup(key)
    if found:
        return str(value)
    code = canonical_code(graph)
    cache.store(key, code)
    return code
