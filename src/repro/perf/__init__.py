"""repro.perf: the shared performance layer.

Every CPU-bound hot path in the library (pairwise similarity, per-
cluster CSG candidate walks, per-topology extraction, coverage
indexing inside greedy selection) routes its parallelism and its
memoization through this package, so the determinism contracts stay
auditable in one place:

* :func:`pmap` — a deterministic parallel map.  Results come back in
  input order, per-item seeds are split from a root seed with
  :func:`derive_seed` (so ``workers=4`` is bit-for-bit identical to
  ``workers=1``), and the process pool degrades gracefully to an
  in-process map whenever it is unavailable.
* :class:`MatchCache` — a bounded LRU cache for subgraph-matching
  results, keyed by ``(pattern canonical code, graph fingerprint)``,
  with hit/miss/eviction counters.  It is *mergeable* across the
  process boundary: ``pmap(..., cache_merge=cache)`` has workers
  record per-item :class:`CacheDelta` access logs (shipped back next
  to trace captures), seeds each worker with the cache's hottest
  entries, and replays the deltas into ``cache`` in input order — so
  hit/miss counters are identical at every worker count and warm
  engine-lifetime caches stay warm inside the pool.

Fault tolerance (``max_retries``/``on_item_failure``/
``item_timeout_s`` on :func:`pmap`) keeps those contracts under
partial failure: a failing item retries with deterministic backoff
(:func:`backoff_s`), escalates to one in-process re-run, and — policy
permitting — is skipped with an :class:`ItemFailure` record occupying
its result slot, so input order survives even when items do not.

Observability moved to :mod:`repro.obs`: ``pmap`` reports dispatch
counters to its metrics registry and ships per-item trace subtrees
back from workers (see :func:`repro.obs.attach_record`), and
:func:`cache_stats` survives only as a deprecated alias of
:func:`repro.obs.matching_snapshot`.

Direct ``multiprocessing``/``concurrent.futures`` imports anywhere
else under ``src/repro`` are rejected by reprolint rule R007.
"""

from repro.perf.cache import (
    CacheDelta,
    MatchCache,
    cache_stats,
    cached_canonical_code,
    cached_covered_edges,
    cached_is_subgraph,
    clear_match_cache,
    get_match_cache,
    graph_fingerprint,
    reset_vf2_calls,
    swap_match_cache,
    vf2_calls,
)
from repro.matching.isomorphism import kernel_stats, reset_kernel_stats
from repro.perf.executor import (
    DEFAULT_CACHE_SEED_LIMIT,
    FAILURE_POLICIES,
    ItemFailure,
    backoff_s,
    derive_seed,
    derive_seeds,
    pmap,
    resolve_workers,
)

__all__ = [
    "CacheDelta",
    "DEFAULT_CACHE_SEED_LIMIT",
    "FAILURE_POLICIES",
    "ItemFailure",
    "MatchCache",
    "backoff_s",
    "cache_stats",
    "cached_canonical_code",
    "cached_covered_edges",
    "cached_is_subgraph",
    "clear_match_cache",
    "derive_seed",
    "derive_seeds",
    "get_match_cache",
    "graph_fingerprint",
    "kernel_stats",
    "pmap",
    "reset_kernel_stats",
    "reset_vf2_calls",
    "resolve_workers",
    "swap_match_cache",
    "vf2_calls",
]
