"""Deterministic parallel execution.

:func:`pmap` is the only place in the library where worker processes
are created.  Its contract is that parallel execution is
*observationally identical* to serial execution:

* results are returned in input order regardless of completion order
  (``ProcessPoolExecutor.map`` already guarantees this);
* randomized work items must not share an RNG — callers split one
  seed per item from a root seed with :func:`derive_seed`, which is a
  pure SHA-256 derivation and therefore identical in every process,
  on every platform, at every worker count;
* when the pool cannot be used (``workers <= 1``, a sandboxed
  environment without process support, an unpicklable task) the exact
  same function is applied in-process instead.

Worker functions must be module-level (picklable) and pure: they
receive one picklable item and return one picklable result.

When :mod:`repro.obs` tracing is enabled, every item runs under a
``pmap.item`` span.  In parallel runs the span tree a worker records
for its item is shipped back with the result (span records are plain
picklable dicts) and re-attached in input order, so the merged trace
is identical to the serial one up to wall-clock fields.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import os
import pickle
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.obs.metrics import inc as _metric_inc
from repro.obs.tracing import SpanRecord, attach_record, capture, span, \
    tracing_enabled

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when ``workers`` is not given.
WORKERS_ENV = "REPRO_WORKERS"

#: Set in pool workers so nested ``pmap`` calls stay in-process
#: (a worker forking its own pool would oversubscribe and deadlock
#: risk on constrained machines).
_IN_WORKER_ENV = "_REPRO_PMAP_WORKER"

#: Pool-infrastructure failures that trigger the serial fallback.
#: AttributeError is how CPython's multiprocessing reducer reports an
#: unpicklable closure/lambda.  Exceptions raised *by the mapped
#: function* are not in this set conceptually, but re-running serially
#: re-raises them unchanged, so the fallback is still faithful.
_POOL_ERRORS = (OSError, ImportError, AttributeError, BrokenProcessPool,
                pickle.PicklingError, TypeError)


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit value, else ``REPRO_WORKERS``.

    Unset, empty, or malformed environment values resolve to 1
    (serial).  The result is always >= 1.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        try:
            workers = int(raw)
        except ValueError:
            workers = 1
    return max(1, workers)


def derive_seed(root_seed: int, index: int) -> int:
    """Split an independent per-item seed from a root seed.

    SHA-256 of ``"root:index"`` truncated to 63 bits — deterministic
    across processes and platforms (unlike ``hash``), and statistically
    independent across indices (unlike ``root + index``, whose streams
    a ``random.Random`` can correlate).
    """
    payload = f"{root_seed}:{index}".encode("ascii")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def derive_seeds(root_seed: int, count: int) -> List[int]:
    """``count`` independent seeds split from ``root_seed``."""
    return [derive_seed(root_seed, index) for index in range(count)]


def _mark_worker() -> None:
    os.environ[_IN_WORKER_ENV] = "1"


def _traced_item(payload: Tuple[Callable, int, object]
                 ) -> Tuple[object, SpanRecord]:
    """Run one item in a pool worker under a ``pmap.item`` capture and
    ship the span subtree back with the result (records are plain
    dicts, so the pair pickles)."""
    fn, index, item = payload
    with capture("pmap.item", force=True, index=index) as cap:
        result = fn(item)
    return result, cap.record


def _serial_map(fn: Callable[[T], R], work: List[T],
                traced: bool) -> List[R]:
    """In-process mapping; mirrors the per-item spans of the parallel
    path so the trace tree is worker-count invariant."""
    if not traced:
        return [fn(item) for item in work]
    results: List[R] = []
    for index, item in enumerate(work):
        with span("pmap.item", index=index):
            results.append(fn(item))
    return results


def pmap(fn: Callable[[T], R], items: Sequence[T],
         workers: Optional[int] = None,
         chunksize: Optional[int] = None) -> List[R]:
    """Map ``fn`` over ``items``, in parallel, preserving input order.

    Parameters
    ----------
    fn:
        A module-level (picklable) pure function of one item.
    items:
        The work items; consumed eagerly.
    workers:
        Process count; ``None`` reads ``REPRO_WORKERS`` (default 1).
        ``workers <= 1`` runs in-process with no pool at all.
    chunksize:
        Items handed to a worker per dispatch; defaults to
        ``ceil(len(items) / (workers * 4))`` so stragglers rebalance.

    The return value is exactly ``[fn(item) for item in items]``; the
    pool is an implementation detail that can never change the result.
    """
    work = list(items)
    workers = resolve_workers(workers)
    traced = tracing_enabled()
    _metric_inc("perf.pmap.calls")
    _metric_inc("perf.pmap.items", len(work))
    if workers <= 1 or len(work) <= 1 or os.environ.get(_IN_WORKER_ENV):
        _metric_inc("perf.pmap.serial_calls")
        return _serial_map(fn, work, traced)
    if chunksize is None:
        chunksize = max(1, -(-len(work) // (workers * 4)))
    try:
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(workers, len(work)),
                initializer=_mark_worker) as pool:
            if traced:
                pairs = list(pool.map(
                    _traced_item,
                    [(fn, index, item)
                     for index, item in enumerate(work)],
                    chunksize=chunksize))
            else:
                _metric_inc("perf.pmap.parallel_calls")
                return list(pool.map(fn, work, chunksize=chunksize))
    except _POOL_ERRORS:
        _metric_inc("perf.pmap.fallback_calls")
        return _serial_map(fn, work, traced)
    _metric_inc("perf.pmap.parallel_calls")
    results: List[R] = []
    for result, record in pairs:
        attach_record(record)
        results.append(result)
    return results
