"""Deterministic parallel execution.

:func:`pmap` is the only place in the library where worker processes
are created.  Its contract is that parallel execution is
*observationally identical* to serial execution:

* results are returned in input order regardless of completion order
  (``ProcessPoolExecutor.map`` already guarantees this);
* randomized work items must not share an RNG — callers split one
  seed per item from a root seed with :func:`derive_seed`, which is a
  pure SHA-256 derivation and therefore identical in every process,
  on every platform, at every worker count;
* when the pool cannot be used (``workers <= 1``, a sandboxed
  environment without process support, an unpicklable task) the exact
  same function is applied in-process instead.

Worker functions must be module-level (picklable) and pure: they
receive one picklable item and return one picklable result.

When :mod:`repro.obs` tracing is enabled, every item runs under a
``pmap.item`` span.  In parallel runs the span tree a worker records
for its item is shipped back with the result (span records are plain
picklable dicts) and re-attached in input order, so the merged trace
is identical to the serial one up to wall-clock fields.

Fault tolerance is opt-in per call (``max_retries`` /
``on_item_failure`` / ``item_timeout_s``).  A failing item climbs a
deterministic ladder — in-place retries with seeded exponential
backoff, one serial re-run in the coordinator, then (policy
permitting) skip-with-record: the item's slot in the result list
holds an :class:`ItemFailure` so input-order determinism survives
partial failure, and per-item trace records are still shipped back
and re-attached.  Attempt numbering is global across the ladder
(worker attempts ``0..max_retries``, serial re-run
``max_retries+1``), so an item's fate under a :mod:`repro.
resilience.chaos` fault plan is identical at every worker count.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import os
import pickle
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import OptionError, WorkerFailure
from repro.obs.metrics import inc as _metric_inc
from repro.perf.cache import (
    CacheDelta,
    MatchCache,
    get_match_cache,
    swap_match_cache,
)
from repro.obs.tracing import SpanRecord, attach_record, capture, span, \
    tracing_enabled
from repro.resilience.chaos import (
    CORRUPTED as _CORRUPTED,
    FaultPlan as _FaultPlan,
    active_plan as _active_plan,
    install as _install_plan,
    is_corrupt as _is_corrupt,
    site as _chaos_site,
)

T = TypeVar("T")
R = TypeVar("R")

#: Failure policies, in escalation order: ``raise`` propagates after
#: the ladder is exhausted, ``serial`` expects the in-process re-run
#: to succeed (and raises if it does not), ``skip`` records the item
#: as an :class:`ItemFailure` in its result slot and moves on.
FAILURE_POLICIES = ("raise", "serial", "skip")

#: Environment variable consulted when ``workers`` is not given.
WORKERS_ENV = "REPRO_WORKERS"

#: Set in pool workers so nested ``pmap`` calls stay in-process
#: (a worker forking its own pool would oversubscribe and deadlock
#: risk on constrained machines).
_IN_WORKER_ENV = "_REPRO_PMAP_WORKER"

#: Pool-infrastructure failures that trigger the serial fallback.
#: AttributeError is how CPython's multiprocessing reducer reports an
#: unpicklable closure/lambda.  Exceptions raised *by the mapped
#: function* are not in this set conceptually, but re-running serially
#: re-raises them unchanged, so the fallback is still faithful.
_POOL_ERRORS = (OSError, ImportError, AttributeError, BrokenProcessPool,
                pickle.PicklingError, TypeError)


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit value, else ``REPRO_WORKERS``.

    Unset, empty, or malformed environment values resolve to 1
    (serial).  The result is always >= 1.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        try:
            workers = int(raw)
        except ValueError:
            workers = 1
    return max(1, workers)


def derive_seed(root_seed: int, index: int) -> int:
    """Split an independent per-item seed from a root seed.

    SHA-256 of ``"root:index"`` truncated to 63 bits — deterministic
    across processes and platforms (unlike ``hash``), and statistically
    independent across indices (unlike ``root + index``, whose streams
    a ``random.Random`` can correlate).
    """
    payload = f"{root_seed}:{index}".encode("ascii")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def derive_seeds(root_seed: int, count: int) -> List[int]:
    """``count`` independent seeds split from ``root_seed``."""
    return [derive_seed(root_seed, index) for index in range(count)]


#: Default bound on the hot-entry snapshot pool workers are seeded
#: with in cache-merge mode (most-recently-used entries first to go).
DEFAULT_CACHE_SEED_LIMIT = 512


def _mark_worker(seed_pairs=None) -> None:
    os.environ[_IN_WORKER_ENV] = "1"
    if seed_pairs:
        # warm the worker's process-global cache from the
        # coordinator's hot snapshot; seeding is silent, so it can
        # only save compute — merged hit/miss accounting is replayed
        # on the coordinator and never sees the seed
        get_match_cache().seed(seed_pairs)


class ItemFailure:
    """The result-slot record of an item skipped after the failure
    ladder was exhausted (``on_item_failure="skip"``).

    Occupying the failed item's slot keeps ``pmap``'s input-order
    contract intact under partial failure; callers filter with
    ``isinstance`` and report the skip in their completion report.
    """

    __slots__ = ("index", "site", "attempts", "error")

    def __init__(self, index: int, site: str, attempts: int,
                 error: str) -> None:
        self.index = index
        self.site = site
        self.attempts = attempts
        self.error = error

    def __repr__(self) -> str:
        return (f"<ItemFailure #{self.index} site={self.site} "
                f"attempts={self.attempts} {self.error!r}>")


def backoff_s(base_s: float, attempt: int, seed: int,
              index: int) -> float:
    """Deterministic exponential backoff with seeded jitter.

    ``base_s * 2**attempt`` scaled by a jitter factor in [1, 2) split
    from ``(seed, index, attempt)`` via :func:`derive_seed` — the
    same wait on every run, every platform, every worker count.
    """
    jitter = derive_seed(seed, (index << 8) | (attempt & 0xFF))
    return base_s * (2 ** attempt) * (1.0 + jitter / float(2 ** 63))


def _failure_text(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def failure_policy(max_retries: int = 0,
                   deadline_s: Optional[float] = None) -> str:
    """The ``on_item_failure`` policy a pipeline stage should use.

    ``"skip"`` (degrade and record) whenever the run opted into
    resilience — retries, a wall-clock budget, or an installed chaos
    plan — and ``"raise"`` otherwise, which keeps fault-free runs on
    :func:`pmap`'s chunked fast path.
    """
    if (max_retries > 0 or deadline_s is not None
            or _active_plan() is not None):
        return "skip"
    return "raise"


def _run_attempts(fn: Callable, index: int, item: object,
                  first_attempt: int, attempts: int, base_s: float,
                  seed: int, site_name: str,
                  plan: Optional[_FaultPlan], traced: bool,
                  ship_record: bool,
                  merge: bool = False) -> Tuple[str, int, object,
                                                Optional[SpanRecord],
                                                Optional[CacheDelta]]:
    """Run one item for up to ``attempts`` attempts, numbered from
    ``first_attempt``.  Returns ``(status, attempts_used, value,
    record, cache_delta)`` where status is ``"ok"`` or ``"fail"`` and
    value is the result or the failure text.

    Each call installs a fresh zero-counter copy of the fault plan,
    so chaos decisions depend only on (key, attempt, within-item call
    count) — never on which process ran the item.  With
    ``ship_record`` the item's trace subtree is captured and returned
    for the coordinator to re-attach (pool workers); otherwise a
    plain span attaches into the open trace in place (serial runs).
    In cache-merge mode each attempt records its cache accesses; only
    the successful attempt's delta is shipped (a failed attempt's
    accesses are as if they never happened, like its result).
    """
    previous = _install_plan(plan.fresh()) if plan is not None else None
    scope = None
    if traced:
        scope = (capture("pmap.item", force=True, index=index)
                 if ship_record else span("pmap.item", index=index))
        scope.__enter__()
    status, used, value = "fail", 0, "no attempts made"
    delta: Optional[CacheDelta] = None
    try:
        for offset in range(attempts):
            attempt = first_attempt + offset
            used = offset + 1
            try:
                corrupt = _chaos_site(site_name, key=index,
                                      attempt=attempt)
                if merge:
                    attempt_delta = CacheDelta()
                    with get_match_cache().recording(attempt_delta):
                        result = fn(item)
                else:
                    attempt_delta = None
                    result = fn(item)
                if corrupt:
                    result = _CORRUPTED
                if _is_corrupt(result):
                    raise WorkerFailure(
                        site_name, key=index, attempt=attempt,
                        kind="corrupt",
                        cause="corrupted result detected in transit")
                status, value, delta = "ok", result, attempt_delta
                break
            except Exception as exc:  # noqa: BLE001 - ladder boundary
                value = _failure_text(exc)
                _metric_inc("perf.pmap.item_errors")
                if scope is not None:
                    scope.add("errors", 1)
                if offset + 1 < attempts:
                    _metric_inc("perf.pmap.retries")
                    time.sleep(backoff_s(base_s, attempt, seed, index))
        if scope is not None and status != "ok":
            scope.add("failed", "true")
    finally:
        if scope is not None:
            scope.__exit__(None, None, None)
        if plan is not None:
            _install_plan(previous)
    record = scope.record if (scope is not None and ship_record) else None
    return status, used, value, record, delta


def _resilient_entry(payload) -> Tuple[str, int, object,
                                       Optional[SpanRecord],
                                       Optional[CacheDelta]]:
    """Pool-worker entry for the fault-tolerant path: run the in-item
    attempt loop and ship the (status, attempts, value, trace record,
    cache delta) tuple back — every component picklable by
    construction."""
    (fn, index, item, max_retries, base_s, seed, site_name, plan,
     traced, merge) = payload
    return _run_attempts(
        fn, index, item, 0, max_retries + 1, base_s, seed, site_name,
        plan, traced, ship_record=True, merge=merge)


def _merge_item(payload) -> Tuple[object, Optional[SpanRecord],
                                  CacheDelta]:
    """Pool-worker entry for the fast path in cache-merge mode: run
    the item with its cache accesses recorded against the worker's
    process-global cache and ship the delta back with the result (and
    the trace capture when tracing is on)."""
    fn, index, item, traced = payload
    delta = CacheDelta()
    record = None
    if traced:
        with capture("pmap.item", force=True, index=index) as cap:
            with get_match_cache().recording(delta):
                result = fn(item)
        record = cap.record
    else:
        with get_match_cache().recording(delta):
            result = fn(item)
    return result, record, delta


def _traced_item(payload: Tuple[Callable, int, object]
                 ) -> Tuple[object, SpanRecord]:
    """Run one item in a pool worker under a ``pmap.item`` capture and
    ship the span subtree back with the result (records are plain
    dicts, so the pair pickles)."""
    fn, index, item = payload
    with capture("pmap.item", force=True, index=index) as cap:
        result = fn(item)
    return result, cap.record


def _serial_map(fn: Callable[[T], R], work: List[T],
                traced: bool) -> List[R]:
    """In-process mapping; mirrors the per-item spans of the parallel
    path so the trace tree is worker-count invariant."""
    if not traced:
        return [fn(item) for item in work]
    results: List[R] = []
    for index, item in enumerate(work):
        with span("pmap.item", index=index):
            results.append(fn(item))
    return results


def _seeded_scratch(cache_merge: MatchCache,
                    seed_limit: int) -> MatchCache:
    """A fresh cache warmed exactly like a pool worker's would be."""
    scratch = MatchCache(max_entries=cache_merge.max_entries)
    scratch.seed(cache_merge.hot_entries(seed_limit))
    return scratch


def _serial_merge_map(fn: Callable[[T], R], work: List[T], traced: bool,
                      cache_merge: MatchCache,
                      seed_limit: int) -> List[R]:
    """In-process mapping in cache-merge mode.

    Runs every item against a seeded scratch cache installed as the
    process-global one — structurally the same record-and-replay path
    a pool worker takes — then replays the per-item deltas into
    ``cache_merge`` in input order.  Because the accounting happens
    only at replay, ``workers=1`` and ``workers=N`` produce identical
    hit/miss counters by construction.
    """
    scratch = _seeded_scratch(cache_merge, seed_limit)
    previous = swap_match_cache(scratch)
    deltas: List[CacheDelta] = []
    results: List[R] = []
    try:
        for index, item in enumerate(work):
            delta = CacheDelta()
            with scratch.recording(delta):
                if traced:
                    with span("pmap.item", index=index):
                        results.append(fn(item))
                else:
                    results.append(fn(item))
            deltas.append(delta)
    finally:
        swap_match_cache(previous)
    for delta in deltas:
        cache_merge.merge_delta(delta)
    return results


def _resilient_map(fn: Callable, work: List, workers: int,
                   max_retries: int, on_item_failure: str,
                   base_s: float, seed: int, site_name: str,
                   item_timeout_s: Optional[float],
                   traced: bool,
                   cache_merge: Optional[MatchCache] = None,
                   cache_seed_limit: int = DEFAULT_CACHE_SEED_LIMIT
                   ) -> List:
    """The fault-tolerant coordinator behind :func:`pmap`.

    Items are submitted one future each (so a single stuck item can
    time out without blocking the batch); a timeout abandons the pool
    outright — ``shutdown(wait=False, cancel_futures=True)``, never a
    blocking ``with`` exit — salvages siblings that already finished,
    and resolves everything unresolved in-process.  Failed primaries
    then climb the escalation ladder per item, in input order.

    In cache-merge mode every coordinator-side run (serial leg,
    unresolved items, re-runs) happens under a seeded scratch cache —
    the same environment a pool worker gets — and each item's
    successful delta is replayed into ``cache_merge`` in input order.
    """
    plan = _active_plan()
    merge = cache_merge is not None
    outcomes: List[Optional[Tuple[str, int, object,
                                  Optional[SpanRecord],
                                  Optional[CacheDelta]]]] = \
        [None] * len(work)
    parallel = (workers > 1 and len(work) > 1
                and not os.environ.get(_IN_WORKER_ENV))
    seeds = cache_merge.hot_entries(cache_seed_limit) if merge else None
    if parallel:
        _metric_inc("perf.pmap.parallel_calls")
        pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        try:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=min(workers, len(work)),
                initializer=_mark_worker, initargs=(seeds,))
            futures = [
                pool.submit(_resilient_entry,
                            (fn, index, item, max_retries, base_s,
                             seed, site_name, plan, traced, merge))
                for index, item in enumerate(work)]
            for index, future in enumerate(futures):
                try:
                    outcomes[index] = future.result(
                        timeout=item_timeout_s)
                except concurrent.futures.TimeoutError:
                    _metric_inc("perf.pmap.timeouts")
                    outcomes[index] = (
                        "timeout", max_retries + 1,
                        f"WorkerFailure: item {index} exceeded "
                        f"{item_timeout_s}s timeout", None, None)
                    # A stuck worker means a stuck pool: abandon it
                    # without waiting, keep siblings that finished,
                    # resolve the rest in-process below.
                    for later in range(index + 1, len(futures)):
                        other = futures[later]
                        if other.done() and not other.cancelled():
                            try:
                                outcomes[later] = other.result(
                                    timeout=0)
                            except Exception as exc:  # noqa: BLE001
                                outcomes[later] = (
                                    "fail", max_retries + 1,
                                    _failure_text(exc), None, None)
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
                    break
        except _POOL_ERRORS:
            _metric_inc("perf.pmap.fallback_calls")
        finally:
            if pool is not None:
                pool.shutdown(wait=False)
    else:
        _metric_inc("perf.pmap.serial_calls")
    # coordinator-side runs mimic a pool worker's cache environment
    scratch_previous = None
    if merge and any(outcome is None for outcome in outcomes):
        scratch_previous = swap_match_cache(
            _seeded_scratch(cache_merge, cache_seed_limit))
    try:
        for index, item in enumerate(work):
            if outcomes[index] is None:
                outcomes[index] = _run_attempts(
                    fn, index, item, 0, max_retries + 1, base_s, seed,
                    site_name, plan, traced, ship_record=False,
                    merge=merge)
        results: List = []
        for index, outcome in enumerate(outcomes):
            status, used, value, record, delta = outcome
            if record is not None:
                attach_record(record)
            if status == "ok":
                if merge and delta is not None:
                    cache_merge.merge_delta(delta)
                results.append(value)
                continue
            if status != "timeout" and on_item_failure in ("serial",
                                                           "skip"):
                # one in-process re-run, continuing the global attempt
                # numbering (a timed-out fn is assumed genuinely stuck
                # and is never re-run in the coordinator)
                _metric_inc("perf.pmap.serial_reruns")
                if merge and scratch_previous is None:
                    scratch_previous = swap_match_cache(
                        _seeded_scratch(cache_merge, cache_seed_limit))
                (rerun_status, rerun_used, rerun_value, _,
                 rerun_delta) = _run_attempts(
                    fn, index, work[index], max_retries + 1, 1, base_s,
                    seed, site_name, plan, traced, ship_record=False,
                    merge=merge)
                used += rerun_used
                if rerun_status == "ok":
                    if merge and rerun_delta is not None:
                        cache_merge.merge_delta(rerun_delta)
                    results.append(rerun_value)
                    continue
                value = rerun_value
            if on_item_failure == "skip":
                _metric_inc("perf.pmap.items_skipped")
                results.append(ItemFailure(index, site_name, used,
                                           str(value)))
                continue
            raise WorkerFailure(
                site_name, key=index, attempt=max(0, used - 1),
                kind="hang" if status == "timeout" else "raise",
                cause=value)
    finally:
        if scratch_previous is not None:
            swap_match_cache(scratch_previous)
    return results


def pmap(fn: Callable[[T], R], items: Sequence[T],
         workers: Optional[int] = None,
         chunksize: Optional[int] = None, *,
         max_retries: int = 0,
         on_item_failure: str = "raise",
         retry_base_s: float = 0.001,
         retry_seed: int = 0,
         item_timeout_s: Optional[float] = None,
         site: str = "pmap.item",
         cache_merge: Optional[MatchCache] = None,
         cache_seed_limit: int = DEFAULT_CACHE_SEED_LIMIT) -> List[R]:
    """Map ``fn`` over ``items``, in parallel, preserving input order.

    Parameters
    ----------
    fn:
        A module-level (picklable) pure function of one item.
    items:
        The work items; consumed eagerly.
    workers:
        Process count; ``None`` reads ``REPRO_WORKERS`` (default 1).
        ``workers <= 1`` runs in-process with no pool at all.
    chunksize:
        Items handed to a worker per dispatch; defaults to
        ``ceil(len(items) / (workers * 4))`` so stragglers rebalance.
        (Fault-tolerant runs submit one future per item instead, so a
        single stuck item can time out without stalling a chunk.)
    max_retries:
        In-place retries per failing item before escalation, with
        deterministic seeded backoff (:func:`backoff_s`).
    on_item_failure:
        ``"raise"`` (default) propagates a :class:`repro.errors.
        WorkerFailure` once an item's ladder is exhausted; ``"serial"``
        adds one in-process re-run first; ``"skip"`` additionally
        replaces an unrecoverable item's result slot with an
        :class:`ItemFailure` record and keeps going.
    retry_base_s / retry_seed:
        Backoff scale and jitter seed — the same waits on every run.
    item_timeout_s:
        Per-item wall-clock limit for pool workers.  On expiry the
        pool is abandoned (never joined) and unfinished items are
        resolved in-process; the stuck item itself fails with kind
        ``"hang"`` and is not re-run.
    site:
        Failure-site name for error records and for
        :mod:`repro.resilience.chaos` fault plans targeting this call.
    cache_merge:
        Opt into mergeable-cache mode: workers record every cache
        access per item into a :class:`repro.perf.cache.CacheDelta`
        shipped back with the result, and the coordinator replays the
        deltas into this cache in input order.  Hit/miss counters on
        ``cache_merge`` then move exactly as a serial run's would —
        at any worker count.  Workers are seeded at startup with the
        cache's hottest ``cache_seed_limit`` entries, which is how an
        engine-lifetime cache (MIDAS) keeps paying off inside a pool.
        Serial execution takes a structurally identical path (scratch
        cache, record, replay) so counters never depend on ``workers``.
    cache_seed_limit:
        Bound on the hot-entry snapshot shipped to each worker.

    The return value is exactly ``[fn(item) for item in items]``; the
    pool is an implementation detail that can never change the result.
    With ``on_item_failure="skip"`` the contract weakens per failed
    item only: that item's slot holds an :class:`ItemFailure`.
    """
    if on_item_failure not in FAILURE_POLICIES:
        raise OptionError(
            f"unknown on_item_failure {on_item_failure!r}; expected "
            f"one of {FAILURE_POLICIES}")
    if max_retries < 0:
        raise OptionError("max_retries must be >= 0")
    work = list(items)
    workers = resolve_workers(workers)
    traced = tracing_enabled()
    _metric_inc("perf.pmap.calls")
    _metric_inc("perf.pmap.items", len(work))
    if (max_retries > 0 or on_item_failure != "raise"
            or item_timeout_s is not None
            or _active_plan() is not None):
        return _resilient_map(fn, work, workers, max_retries,
                              on_item_failure, retry_base_s,
                              retry_seed, site, item_timeout_s, traced,
                              cache_merge, cache_seed_limit)
    if workers <= 1 or len(work) <= 1 or os.environ.get(_IN_WORKER_ENV):
        _metric_inc("perf.pmap.serial_calls")
        if cache_merge is not None:
            return _serial_merge_map(fn, work, traced, cache_merge,
                                     cache_seed_limit)
        return _serial_map(fn, work, traced)
    if chunksize is None:
        chunksize = max(1, -(-len(work) // (workers * 4)))
    if cache_merge is not None:
        seeds = cache_merge.hot_entries(cache_seed_limit)
        try:
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=min(workers, len(work)),
                    initializer=_mark_worker, initargs=(seeds,)) as pool:
                triples = list(pool.map(
                    _merge_item,
                    [(fn, index, item, traced)
                     for index, item in enumerate(work)],
                    chunksize=chunksize))
        except _POOL_ERRORS:
            _metric_inc("perf.pmap.fallback_calls")
            return _serial_merge_map(fn, work, traced, cache_merge,
                                     cache_seed_limit)
        _metric_inc("perf.pmap.parallel_calls")
        merged: List[R] = []
        for result, record, delta in triples:
            if record is not None:
                attach_record(record)
            cache_merge.merge_delta(delta)
            merged.append(result)
        return merged
    try:
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(workers, len(work)),
                initializer=_mark_worker) as pool:
            if traced:
                pairs = list(pool.map(
                    _traced_item,
                    [(fn, index, item)
                     for index, item in enumerate(work)],
                    chunksize=chunksize))
            else:
                _metric_inc("perf.pmap.parallel_calls")
                return list(pool.map(fn, work, chunksize=chunksize))
    except _POOL_ERRORS:
        _metric_inc("perf.pmap.fallback_calls")
        return _serial_map(fn, work, traced)
    _metric_inc("perf.pmap.parallel_calls")
    results: List[R] = []
    for result, record in pairs:
        attach_record(record)
        results.append(result)
    return results
