"""Pluggable repository backends: in-memory (default) or on-disk.

The :class:`RepositoryBackend` contract is deliberately small — the
service calls exactly four things around its existing repository-list
code paths, so CATAPULT/TATTOO/MIDAS and every handler run unchanged
on either backend:

* :meth:`~RepositoryBackend.load` at boot → ``None`` (cold start,
  run the initial build) or a :class:`StoreState` (recovered
  repository + pattern set + pending WAL batches to replay);
* :meth:`~RepositoryBackend.log_batch` *before* ``Midas.apply_batch``
  (write-ahead: the batch is durable before any state changes);
* :meth:`~RepositoryBackend.commit` after every snapshot publish
  (segments → pattern blob → manifest rename → WAL checkpoint, each
  step atomic or append-only);
* :meth:`~RepositoryBackend.close` on shutdown.

:class:`MemoryBackend` no-ops all four — the pre-store behavior.
:class:`DiskBackend` owns one store directory::

    DIR/manifest.json          atomic snapshot pointer (+ checksum)
    DIR/wal.log                fsync-per-record change-log
    DIR/segments/seg-*.seg     append-only framed graph records
    DIR/patterns/patterns-*.bin  content-addressed pattern blobs

Crash recovery = ``load()``: validate the manifest, scan segments
against their sealed extents (truncate unsealed tails, quarantine
damaged sealed regions), verify the pattern blob's SHA-256, truncate
a torn WAL tail, and hand back every WAL batch past the manifest's
watermark for idempotent replay.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.evolving import UpdateBatch
from repro.errors import StoreCorruptionError
from repro.graph.graph import Graph
from repro.patterns.base import PatternSet
from repro.perf.cache import graph_fingerprint
from repro.store.format import (
    WAL_MAGIC,
    atomic_write,
    decode_pattern_blob,
    encode_graph_record,
    encode_pattern_blob,
)
from repro.store.manifest import (
    MANIFEST_NAME,
    load_manifest,
    write_manifest,
)
from repro.store.segments import SegmentStore, record_digest
from repro.store.wal import WriteAheadLog

#: Chaos site covering the pattern blob's atomic write.
SITE_PATTERNS = "store.patterns.write"


class RecoveryReport:
    """What a :meth:`DiskBackend.load` had to repair or set aside."""

    __slots__ = ("quarantined_segments", "repaired_segments",
                 "dropped_graphs", "truncated_wal_bytes",
                 "pending_batches", "replayed_batches")

    def __init__(self) -> None:
        self.quarantined_segments: List[str] = []
        self.repaired_segments: List[str] = []
        self.dropped_graphs: List[str] = []
        self.truncated_wal_bytes = 0
        self.pending_batches = 0
        #: filled in by the service once replay completes
        self.replayed_batches = 0

    @property
    def degraded(self) -> bool:
        """True when recovery lost data (quarantine/drop) rather
        than merely rolling back unfinished writes."""
        return bool(self.quarantined_segments or self.dropped_graphs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "quarantined_segments": list(self.quarantined_segments),
            "repaired_segments": list(self.repaired_segments),
            "dropped_graphs": list(self.dropped_graphs),
            "truncated_wal_bytes": self.truncated_wal_bytes,
            "pending_batches": self.pending_batches,
            "replayed_batches": self.replayed_batches,
            "degraded": self.degraded,
        }

    def __repr__(self) -> str:
        return (f"<RecoveryReport pending={self.pending_batches} "
                f"degraded={self.degraded}>")


class StoreState:
    """Everything :meth:`DiskBackend.load` recovered."""

    __slots__ = ("repository", "network", "patterns", "generator",
                 "pending", "report")

    def __init__(self, repository: List[Graph],
                 network: Optional[Graph], patterns: PatternSet,
                 generator: str,
                 pending: List[Tuple[int, UpdateBatch]],
                 report: RecoveryReport) -> None:
        self.repository = repository
        self.network = network
        self.patterns = patterns
        self.generator = generator
        self.pending = pending
        self.report = report

    @property
    def data(self):
        """The publishable data argument: the network graph for a
        single-network service, else the ordered repository list."""
        return self.network if self.network is not None \
            else self.repository

    def __repr__(self) -> str:
        return (f"<StoreState graphs={len(self.repository)} "
                f"patterns={len(self.patterns)} "
                f"pending={len(self.pending)}>")


class RepositoryBackend:
    """The protocol both backends implement (also usable as a base)."""

    #: durable backends reset the service's MIDAS engine after every
    #: commit so live maintenance and crash replay compute the same
    #: fresh-engine function of (repository, batch)
    durable = False

    def load(self) -> Optional[StoreState]:
        """Recover persisted state, or ``None`` for a cold start."""
        return None

    def log_batch(self, batch: UpdateBatch) -> int:
        """Write-ahead-log one batch; returns its sequence number."""
        return 0

    def commit(self, repository: Sequence[Graph],
               network: Optional[Graph], patterns: PatternSet,
               generator: str,
               wal_seq: Optional[int] = None) -> None:
        """Persist one published snapshot."""

    def watermark(self) -> int:
        """Highest batch sequence folded into a commit."""
        return 0

    def close(self) -> None:
        """Release file handles."""


class MemoryBackend(RepositoryBackend):
    """The pre-store behavior: nothing survives the process."""

    def __repr__(self) -> str:
        return "<MemoryBackend>"


class DiskBackend(RepositoryBackend):
    """WAL + segments + manifest under one store directory."""

    durable = True

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self.segments_dir = os.path.join(self.root, "segments")
        self.patterns_dir = os.path.join(self.root, "patterns")
        os.makedirs(self.segments_dir, exist_ok=True)
        os.makedirs(self.patterns_dir, exist_ok=True)
        self._sweep_temps()
        self.manifest_path = os.path.join(self.root, MANIFEST_NAME)
        self.wal = WriteAheadLog(os.path.join(self.root, "wal.log"))
        self.segments = SegmentStore(self.segments_dir)
        self._wal_seq = 0

    def _sweep_temps(self) -> None:
        """Drop ``*.tmp`` leftovers from writes that never renamed."""
        for directory in (self.root, self.segments_dir,
                          self.patterns_dir):
            for name in sorted(os.listdir(directory)):
                if name.endswith(".tmp"):
                    os.unlink(os.path.join(directory, name))

    # ------------------------------------------------------- recovery

    def load(self) -> Optional[StoreState]:
        document = load_manifest(self.manifest_path)
        if document is None:
            # cold start — or a crash before the very first commit.
            # Any WAL content predates a manifest and can never be
            # replayed against a base state, so reset the log.
            if os.path.exists(self.wal.path):
                with open(self.wal.path, "wb") as handle:
                    handle.write(WAL_MAGIC)
                    handle.flush()
                    os.fsync(handle.fileno())
            return None
        report = RecoveryReport()
        graphs, quarantined, repaired = self.segments.load(
            list(document.get("segments", [])))
        report.quarantined_segments = quarantined
        report.repaired_segments = repaired
        repository: List[Graph] = []
        for item in document.get("repository", []):
            graph = graphs.get(str(item.get("record")))
            if graph is None:
                report.dropped_graphs.append(str(item.get("name")))
                continue
            if graph_fingerprint(graph) != item.get("fingerprint"):
                raise StoreCorruptionError(
                    f"graph {item.get('name')!r} decoded with a "
                    "different content fingerprint than the "
                    "manifest pinned", path=self.manifest_path)
            repository.append(graph)
        if document.get("repository") and not repository:
            # partial quarantine degrades; total loss cannot even
            # boot a snapshot — surface it as typed corruption
            raise StoreCorruptionError(
                "every repository graph was lost to segment "
                "quarantine", path=self.manifest_path)
        patterns_info = document.get("patterns", {})
        blob_path = os.path.join(self.patterns_dir,
                                 str(patterns_info.get("file")))
        if not os.path.exists(blob_path):
            raise StoreCorruptionError(
                "manifest references a missing pattern blob",
                path=blob_path)
        with open(blob_path, "rb") as handle:
            blob = handle.read()
        digest = hashlib.sha256(blob).hexdigest()
        if digest != patterns_info.get("sha256"):
            raise StoreCorruptionError(
                f"pattern blob checksum mismatch (recorded "
                f"{patterns_info.get('sha256')!r}, computed "
                f"{digest!r})", path=blob_path)
        patterns = decode_pattern_blob(blob, path=blob_path)
        watermark = int(document.get("wal_seq", 0))
        pending, truncated = self.wal.scan(watermark)
        report.truncated_wal_bytes = truncated
        report.pending_batches = len(pending)
        self._wal_seq = max([watermark]
                            + [seq for seq, _ in pending])
        network: Optional[Graph] = None
        if document.get("network"):
            if not repository:
                raise StoreCorruptionError(
                    "network store recovered with no graph",
                    path=self.manifest_path)
            network = repository[0]
        return StoreState(repository, network, patterns,
                          str(document.get("generator", "catapult")),
                          pending, report)

    # ------------------------------------------------------- writing

    def log_batch(self, batch: UpdateBatch) -> int:
        seq = self._wal_seq + 1
        self.wal.append(seq, batch)
        # only claim the sequence once the record is durable, so a
        # failed append (fsync_fail) leaves the numbering contiguous
        self._wal_seq = seq
        return seq

    def commit(self, repository: Sequence[Graph],
               network: Optional[Graph], patterns: PatternSet,
               generator: str,
               wal_seq: Optional[int] = None) -> None:
        if wal_seq is None:
            wal_seq = self._wal_seq
        members = list(repository)
        self.segments.append(members)
        blob = encode_pattern_blob(patterns)
        blob_sha = hashlib.sha256(blob).hexdigest()
        blob_name = f"patterns-{blob_sha[:16]}.bin"
        atomic_write(os.path.join(self.patterns_dir, blob_name),
                     blob, SITE_PATTERNS, key=blob_name)
        write_manifest(self.manifest_path, {
            "wal_seq": int(wal_seq),
            "generator": generator,
            "network": network is not None,
            "segments": [dict(entry)
                         for entry in self.segments.entries],
            "repository": [
                {"name": graph.name,
                 "fingerprint": graph_fingerprint(graph),
                 "record": record_digest(encode_graph_record(graph))}
                for graph in members],
            "patterns": {"file": blob_name, "sha256": blob_sha,
                         "count": len(patterns)},
        })
        self.wal.checkpoint(int(wal_seq))
        self._wal_seq = max(self._wal_seq, int(wal_seq))
        self._gc_pattern_blobs(keep=blob_name)

    def _gc_pattern_blobs(self, keep: str) -> None:
        for name in sorted(os.listdir(self.patterns_dir)):
            if name != keep and name.startswith("patterns-"):
                os.unlink(os.path.join(self.patterns_dir, name))

    def watermark(self) -> int:
        return self._wal_seq

    def close(self) -> None:
        self.wal.close()
        self.segments.close()

    def __repr__(self) -> str:
        return (f"<DiskBackend {self.root!r} "
                f"wal_seq={self._wal_seq}>")


__all__ = [
    "DiskBackend",
    "MemoryBackend",
    "RecoveryReport",
    "RepositoryBackend",
    "SITE_PATTERNS",
    "StoreState",
]
