"""The write-ahead change-log: log the batch, then apply it.

Every MIDAS maintenance batch is appended here — one framed,
CRC-checksummed, fsync'd record — *before* ``Midas.apply_batch``
runs, so the store's recovery invariant holds at every crash point:

* crash **before** the append is durable → the batch never happened
  (pre-batch state);
* crash **after** the append but before the manifest commit → the
  batch is replayed from the WAL on the next boot (post-batch
  state);
* a **torn tail** (the crash landed mid-append) → the scanner
  truncates the half-record and the batch never happened.

Replay is idempotent because MIDAS quarantines duplicate additions
and unknown removals (PR 5): re-applying an already-committed batch
is a no-op minor update, so "replay everything past the manifest's
watermark" is safe even when the crash fell between the manifest
rename and the WAL checkpoint.
"""

from __future__ import annotations

import os
import warnings
from typing import List, Optional, Tuple

from repro.datasets.evolving import UpdateBatch
from repro.store.format import (
    SCAN_CLEAN,
    WAL_MAGIC,
    decode_batch_record,
    durable_append,
    encode_batch_record,
    frame_record,
    fsync_dir,
    read_framed_file,
    truncate_file,
)

#: Chaos sites threaded through the WAL's durable paths.
SITE_APPEND = "store.wal.append"
SITE_READ = "store.wal.read"


class WriteAheadLog:
    """Append-only, fsync-per-record change-log of update batches."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle = None

    # ------------------------------------------------------- writing

    def _open(self):
        if self._handle is None or self._handle.closed:
            fresh = not os.path.exists(self.path) \
                or os.path.getsize(self.path) == 0
            self._handle = open(self.path, "ab")
            if fresh:
                self._handle.write(WAL_MAGIC)
                self._handle.flush()
                os.fsync(self._handle.fileno())
                fsync_dir(os.path.dirname(self.path) or ".")
        return self._handle

    def append(self, seq: int, batch: UpdateBatch) -> None:
        """Durably log one batch under sequence number ``seq``.

        Returns only once the record is fsync'd; a scripted
        ``fsync_fail`` raises with nothing written and a
        ``torn_write`` crashes mid-frame — both leave the log
        recoverable.
        """
        handle = self._open()
        durable_append(handle, encode_batch_record(seq, batch),
                       SITE_APPEND, key=seq, path=self.path)

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None

    # ------------------------------------------------------- reading

    def scan(self, watermark: int, repair: bool = True
             ) -> Tuple[List[Tuple[int, UpdateBatch]], int]:
        """Batches logged past ``watermark``, oldest first.

        Returns ``(pending, truncated_bytes)``.  A torn or
        checksum-failed tail is truncated in place (``repair=True``)
        with a warning — those bytes never finished becoming durable,
        so dropping them restores the pre-append state the writer's
        contract promises.
        """
        if not os.path.exists(self.path):
            return [], 0
        self.close()
        payloads, valid_end, verdict = read_framed_file(
            self.path, WAL_MAGIC, site_name=SITE_READ)
        truncated = 0
        if verdict is not SCAN_CLEAN:
            truncated = os.path.getsize(self.path) \
                - max(valid_end, len(WAL_MAGIC))
            warnings.warn(
                f"{self.path}: {verdict} WAL tail; truncating "
                f"{truncated} byte(s) back to the last intact "
                "record", stacklevel=2)
            if repair:
                if valid_end <= len(WAL_MAGIC):
                    # the magic itself is damaged: rewrite a bare log
                    with open(self.path, "wb") as handle:
                        handle.write(WAL_MAGIC)
                        handle.flush()
                        os.fsync(handle.fileno())
                else:
                    truncate_file(self.path, valid_end)
        pending = []
        for payload in payloads:
            seq, batch = decode_batch_record(payload, path=self.path)
            if seq > watermark:
                pending.append((seq, batch))
        pending.sort(key=lambda item: item[0])
        return pending, truncated

    def checkpoint(self, watermark: int) -> None:
        """Drop every record at or below ``watermark``.

        Rewritten atomically (temp + fsync + rename + directory
        fsync) so a crash mid-checkpoint leaves the previous log
        intact; surviving stale records are harmless because replay
        filters on the manifest watermark and re-application is
        idempotent anyway.
        """
        pending, _ = self.scan(watermark, repair=False)
        temp = self.path + ".tmp"
        with open(temp, "wb") as handle:
            handle.write(WAL_MAGIC)
            for seq, batch in pending:
                handle.write(frame_record(
                    encode_batch_record(seq, batch)))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)
        fsync_dir(os.path.dirname(self.path) or ".")


__all__ = ["SITE_APPEND", "SITE_READ", "WriteAheadLog"]
