"""On-disk record framing and wire codecs for :mod:`repro.store`.

Every store file is a *magic header* followed by length-prefixed,
CRC32-checksummed frames::

    <8-byte magic> <u32 length> <u32 crc32(payload)> <payload> ...

The frame layer gives the recovery scanner exactly two failure
shapes: a **torn tail** (the file ends inside a frame header or
payload — the crash left a half-written append, which recovery
truncates) and a **corrupt frame** (a complete frame whose payload
fails its checksum — bit rot or an overwritten region, which recovery
quarantines).  Everything above — WAL batches, segment graphs,
pattern blobs — is a payload codec over this one framing.

Graph payloads reuse the :meth:`repro.graph.compact.CompactGraph.
encode` wire tuples (PR 7): a compact JSON header carries the name,
typecodes, label tables, and attributes, and the width-packed array
buffers follow as raw bytes.  The round trip is lossless including
node and edge insertion order, which is what makes WAL replay
deterministic.

All durable writes here follow the fsync discipline reprolint R019
enforces over this package: append paths flush + fsync the file
before returning; rename paths fsync the temp file before
``os.replace`` and fsync the directory after.  The
:func:`repro.resilience.chaos.disk_site` hook threads through every
durable call so the crash-recovery matrix can script ``torn_write``
/ ``short_read`` / ``fsync_fail`` / ``crash_after_n_records`` faults
at exactly these boundaries.
"""

from __future__ import annotations

import json
import os
import signal
import struct
import zlib
from typing import Dict, List, Optional, Tuple

from repro.datasets.evolving import UpdateBatch
from repro.errors import (
    SimulatedCrash,
    StoreCorruptionError,
    StoreWriteError,
)
from repro.graph.compact import decode_graph
from repro.graph.graph import Graph
from repro.patterns.base import Pattern, PatternSet
from repro.resilience.chaos import disk_site

#: File magics (8 bytes each): WAL, graph segments, pattern blobs.
WAL_MAGIC = b"RPWAL01\n"
SEGMENT_MAGIC = b"RPSEG01\n"
PATTERNS_MAGIC = b"RPPAT01\n"

#: Frame header: little-endian (payload length, crc32 of payload).
_FRAME = struct.Struct("<II")
_U32 = struct.Struct("<I")

#: When set to ``1`` a scripted crash fault kills the process with
#: SIGKILL (the store-smoke harness); otherwise it raises
#: :class:`repro.errors.SimulatedCrash` (the in-process matrix).
CRASH_HARD_ENV = "REPRO_STORE_CRASH_HARD"

#: Scan verdicts: a clean file, a torn (truncatable) tail, or a
#: complete-but-checksum-failed frame.
SCAN_CLEAN = None
SCAN_TORN = "torn"
SCAN_CORRUPT = "corrupt"


# ---------------------------------------------------------------- frames


def frame_record(payload: bytes) -> bytes:
    """One framed record: length + CRC32 + payload."""
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def scan_records(data: bytes, offset: int = 0
                 ) -> Tuple[List[bytes], int, Optional[str]]:
    """Walk frames from ``offset``; returns ``(payloads, valid_end,
    verdict)``.

    ``valid_end`` is the byte offset just past the last intact frame
    — the truncation point for a torn tail and the quarantine
    boundary for a corrupt frame.  The verdict is
    :data:`SCAN_CLEAN`, :data:`SCAN_TORN`, or :data:`SCAN_CORRUPT`.
    """
    payloads: List[bytes] = []
    at = offset
    end = len(data)
    while at < end:
        if end - at < _FRAME.size:
            return payloads, at, SCAN_TORN
        length, crc = _FRAME.unpack_from(data, at)
        start = at + _FRAME.size
        if end - start < length:
            return payloads, at, SCAN_TORN
        payload = data[start:start + length]
        if zlib.crc32(payload) != crc:
            return payloads, at, SCAN_CORRUPT
        payloads.append(payload)
        at = start + length
    return payloads, at, SCAN_CLEAN


# ---------------------------------------------------------- durable I/O


def crash_point(site_name: str, kind: str) -> None:
    """Die at a scripted crash point.

    In-process runs raise :class:`repro.errors.SimulatedCrash` (the
    test matrix catches it and re-opens the store); with
    :data:`CRASH_HARD_ENV` set the process SIGKILLs itself so the
    store-smoke harness exercises recovery against a genuinely dead
    ``kill -9`` victim — no atexit hooks, no flushes, no unwinding.
    """
    if os.environ.get(CRASH_HARD_ENV) == "1":
        os.kill(os.getpid(), signal.SIGKILL)
    raise SimulatedCrash(site_name, kind)


def fsync_dir(path: str) -> None:
    """fsync a directory so a rename/creation inside it is durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def durable_append(handle, payload: bytes, site_name: str,
                   key: object = None,
                   path: Optional[str] = None) -> int:
    """Append one framed record and make it durable (flush + fsync).

    The chaos hook fires *before* the write so scripted faults model
    the real failure envelope: ``fsync_fail`` raises
    :class:`~repro.errors.StoreWriteError` with nothing written (the
    record never becomes durable), ``torn_write`` persists a prefix
    of the frame then crashes (recovery must truncate), and
    ``crash_after_n_records`` crashes after the record is fully
    durable (recovery must replay).  Returns the framed length.
    """
    frame = frame_record(payload)
    kind = disk_site(site_name, key)
    if kind == "fsync_fail":
        raise StoreWriteError(
            f"{site_name}: injected fsync failure", path=path)
    if kind == "torn_write":
        handle.write(frame[:max(1, len(frame) // 2)])
        handle.flush()
        os.fsync(handle.fileno())
        crash_point(site_name, "torn_write")
    handle.write(frame)
    handle.flush()
    os.fsync(handle.fileno())
    if kind == "crash_after_n_records":
        crash_point(site_name, "crash_after_n_records")
    return len(frame)


def atomic_write(path: str, data: bytes, site_name: str,
                 key: object = None) -> None:
    """Durable whole-file write: temp → flush → fsync → rename →
    directory fsync.

    Readers never observe a partial file: either the old content (or
    absence) survives or the complete new content does.  A
    ``torn_write`` fault leaves only a half-written ``*.tmp`` the
    next boot sweeps; ``crash_after_n_records`` crashes after the
    rename is durable.
    """
    kind = disk_site(site_name, key)
    if kind == "fsync_fail":
        raise StoreWriteError(
            f"{site_name}: injected fsync failure", path=path)
    temp = path + ".tmp"
    with open(temp, "wb") as handle:
        if kind == "torn_write":
            handle.write(data[:max(1, len(data) // 2)])
            handle.flush()
            os.fsync(handle.fileno())
            crash_point(site_name, "torn_write")
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    fsync_dir(os.path.dirname(path) or ".")
    if kind == "crash_after_n_records":
        crash_point(site_name, "crash_after_n_records")


def chaos_read(data: bytes, site_name: str,
               key: object = None) -> bytes:
    """Apply a scripted ``short_read`` to just-read file bytes."""
    kind = disk_site(site_name, key)
    if kind == "short_read":
        return data[:len(data) // 2]
    return data


def read_framed_file(path: str, magic: bytes,
                     site_name: Optional[str] = None
                     ) -> Tuple[List[bytes], int, Optional[str]]:
    """Read + scan one store file; returns ``(payloads, valid_end,
    verdict)``.

    A file too short to hold the magic, or holding the wrong magic,
    scans as zero valid bytes with a :data:`SCAN_TORN` /
    :data:`SCAN_CORRUPT` verdict respectively.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if site_name is not None:
        data = chaos_read(data, site_name,
                          key=os.path.basename(path))
    if len(data) < len(magic):
        return [], 0, SCAN_TORN
    if data[:len(magic)] != magic:
        return [], 0, SCAN_CORRUPT
    return scan_records(data, offset=len(magic))


def truncate_file(path: str, size: int) -> None:
    """Physically truncate ``path`` to ``size`` bytes, durably."""
    with open(path, "r+b") as handle:
        handle.truncate(size)
        handle.flush()
        os.fsync(handle.fileno())


# ----------------------------------------------------------- graph codec


def encode_graph_record(graph: Graph) -> bytes:
    """Serialize one graph as a segment/WAL payload.

    Layout: ``<u32 header length> <JSON header> <node-id buffer>
    <label-id buffer> <edge-triple buffer>`` where the buffers are the
    width-packed arrays from :meth:`CompactGraph.encode` and the
    header records their typecodes and byte lengths.  Attribute dicts
    ride in the header (node keys as ints, edge keys flattened to
    ``[u, v, attrs]`` triples), preserving insertion order.
    """
    (version, name, order, id_pack, label_pack, node_labels,
     edge_labels, edge_pack, node_attrs,
     edge_attrs) = graph.compact().encode()
    header = {
        "v": version,
        "name": name,
        "n": order,
        "ids": [id_pack[0], len(id_pack[1])],
        "labels": [label_pack[0], len(label_pack[1])],
        "edges": [edge_pack[0], len(edge_pack[1])],
        "node_labels": list(node_labels),
        "edge_labels": list(edge_labels),
        "node_attrs": [[node, attrs]
                       for node, attrs in node_attrs.items()]
        if node_attrs else None,
        "edge_attrs": [[u, v, attrs]
                       for (u, v), attrs in edge_attrs.items()]
        if edge_attrs else None,
    }
    head = json.dumps(header, separators=(",", ":"),
                      ensure_ascii=True).encode("utf-8")
    return b"".join((_U32.pack(len(head)), head, id_pack[1],
                     label_pack[1], edge_pack[1]))


def decode_graph_record(payload: bytes,
                        path: Optional[str] = None) -> Graph:
    """Inverse of :func:`encode_graph_record`.

    Payloads are CRC-validated before they reach here, so a decode
    failure means a format bug or corruption that beat the checksum
    — either way a typed :class:`~repro.errors.StoreCorruptionError`.
    """
    try:
        (head_len,) = _U32.unpack_from(payload, 0)
        at = _U32.size
        header = json.loads(payload[at:at + head_len].decode("utf-8"))
        at += head_len
        ids_code, ids_len = header["ids"]
        labels_code, labels_len = header["labels"]
        edges_code, edges_len = header["edges"]
        id_buf = payload[at:at + ids_len]
        at += ids_len
        label_buf = payload[at:at + labels_len]
        at += labels_len
        edge_buf = payload[at:at + edges_len]
        node_attrs = {int(node): attrs for node, attrs
                      in header["node_attrs"]} \
            if header.get("node_attrs") else None
        edge_attrs = {(int(u), int(v)): attrs for u, v, attrs
                      in header["edge_attrs"]} \
            if header.get("edge_attrs") else None
        state = (header["v"], header["name"], header["n"],
                 (ids_code, id_buf), (labels_code, label_buf),
                 tuple(header["node_labels"]),
                 tuple(header["edge_labels"]),
                 (edges_code, edge_buf), node_attrs, edge_attrs)
        return decode_graph(state)
    except (KeyError, ValueError, TypeError, struct.error,
            UnicodeDecodeError) as exc:
        raise StoreCorruptionError(
            f"undecodable graph record: {exc}", path=path,
            detail=exc) from exc


# ----------------------------------------------------------- batch codec


def encode_batch_record(seq: int, batch: UpdateBatch) -> bytes:
    """Serialize one WAL entry: the sequence number, removed graph
    names, and the added graphs as embedded graph records."""
    added = [encode_graph_record(graph) for graph in batch.added]
    header = {
        "seq": seq,
        "removed": [str(name) for name in batch.removed],
        "added": [len(record) for record in added],
    }
    head = json.dumps(header, separators=(",", ":"),
                      ensure_ascii=True).encode("utf-8")
    return b"".join([_U32.pack(len(head)), head] + added)


def decode_batch_record(payload: bytes,
                        path: Optional[str] = None
                        ) -> Tuple[int, UpdateBatch]:
    """Inverse of :func:`encode_batch_record`."""
    try:
        (head_len,) = _U32.unpack_from(payload, 0)
        at = _U32.size
        header = json.loads(payload[at:at + head_len].decode("utf-8"))
        at += head_len
        added: List[Graph] = []
        for length in header["added"]:
            added.append(decode_graph_record(payload[at:at + length],
                                             path=path))
            at += length
        return int(header["seq"]), UpdateBatch(
            added=added,
            removed=[str(name) for name in header["removed"]])
    except (KeyError, ValueError, TypeError, struct.error,
            UnicodeDecodeError) as exc:
        raise StoreCorruptionError(
            f"undecodable WAL batch record: {exc}", path=path,
            detail=exc) from exc


# --------------------------------------------------------- pattern codec


def encode_pattern_record(pattern: Pattern) -> bytes:
    """One pattern: its provenance tag plus its graph record."""
    source = pattern.source.encode("utf-8")
    return b"".join((_U32.pack(len(source)), source,
                     encode_graph_record(pattern.graph)))


def decode_pattern_record(payload: bytes,
                          path: Optional[str] = None) -> Pattern:
    """Inverse of :func:`encode_pattern_record`."""
    try:
        (source_len,) = _U32.unpack_from(payload, 0)
        at = _U32.size
        source = payload[at:at + source_len].decode("utf-8")
        graph = decode_graph_record(payload[at + source_len:],
                                    path=path)
        return Pattern(graph, source=source)
    except (ValueError, struct.error, UnicodeDecodeError) as exc:
        raise StoreCorruptionError(
            f"undecodable pattern record: {exc}", path=path,
            detail=exc) from exc


def encode_pattern_blob(patterns: PatternSet) -> bytes:
    """A whole pattern-set blob: magic + one frame per pattern, in
    display order (the order the panel serves)."""
    parts = [PATTERNS_MAGIC]
    for pattern in patterns:
        parts.append(frame_record(encode_pattern_record(pattern)))
    return b"".join(parts)


def decode_pattern_blob(data: bytes,
                        path: Optional[str] = None) -> PatternSet:
    """Inverse of :func:`encode_pattern_blob`; any damage is fatal
    (the manifest pins the blob's checksum, so a mismatch here is
    corruption that slipped past an atomic rename)."""
    if data[:len(PATTERNS_MAGIC)] != PATTERNS_MAGIC:
        raise StoreCorruptionError(
            "pattern blob has a bad magic header", path=path)
    payloads, _, verdict = scan_records(
        data, offset=len(PATTERNS_MAGIC))
    if verdict is not SCAN_CLEAN:
        raise StoreCorruptionError(
            f"pattern blob scan failed ({verdict})", path=path)
    return PatternSet(decode_pattern_record(payload, path=path)
                      for payload in payloads)


__all__ = [
    "CRASH_HARD_ENV",
    "PATTERNS_MAGIC",
    "SCAN_CLEAN",
    "SCAN_CORRUPT",
    "SCAN_TORN",
    "SEGMENT_MAGIC",
    "WAL_MAGIC",
    "atomic_write",
    "chaos_read",
    "crash_point",
    "decode_batch_record",
    "decode_graph_record",
    "decode_pattern_blob",
    "decode_pattern_record",
    "durable_append",
    "encode_batch_record",
    "encode_graph_record",
    "encode_pattern_blob",
    "encode_pattern_record",
    "frame_record",
    "fsync_dir",
    "read_framed_file",
    "scan_records",
    "truncate_file",
]
