"""repro.store: the durable repository tier.

An on-disk, append-only graph store plus a write-ahead change-log
that make MIDAS maintenance and :mod:`repro.service` crash-
recoverable (stdlib-only, like every repro subsystem):

* :class:`DiskBackend` / :class:`MemoryBackend` — the pluggable
  :class:`RepositoryBackend` protocol behind the service's
  repository-list call sites (``repro-vqi serve --store DIR``);
* :class:`WriteAheadLog` — fsync-per-record batch log, appended
  *before* ``Midas.apply_batch`` so every crash point recovers to
  the pre-batch or post-batch pattern set, bitwise;
* :class:`SegmentStore` — framed, CRC-checksummed
  ``CompactGraph.encode()`` records, content-addressed, with torn
  tails truncated and damaged sealed regions quarantined;
* the manifest (:func:`write_manifest` / :func:`load_manifest`) —
  one atomic write-temp→fsync→rename pointer pinning a consistent
  ``(segments, pattern blob, repository order, WAL watermark)``
  snapshot.

DESIGN.md ("Durability & recovery") specifies the file formats, the
crash matrix, and the recovery invariants; reprolint R019 enforces
the flush+fsync discipline over this package.
"""

from repro.store.backends import (
    DiskBackend,
    MemoryBackend,
    RecoveryReport,
    RepositoryBackend,
    StoreState,
)
from repro.store.format import (
    decode_graph_record,
    decode_pattern_blob,
    encode_graph_record,
    encode_pattern_blob,
    frame_record,
    scan_records,
)
from repro.store.manifest import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    load_manifest,
    write_manifest,
)
from repro.store.segments import SegmentStore, record_digest
from repro.store.wal import WriteAheadLog

__all__ = [
    "DiskBackend",
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
    "MemoryBackend",
    "RecoveryReport",
    "RepositoryBackend",
    "SegmentStore",
    "StoreState",
    "WriteAheadLog",
    "decode_graph_record",
    "decode_pattern_blob",
    "encode_graph_record",
    "encode_pattern_blob",
    "frame_record",
    "load_manifest",
    "record_digest",
    "scan_records",
    "write_manifest",
]
