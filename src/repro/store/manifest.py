"""The manifest: one atomic pointer to a consistent store snapshot.

``manifest.json`` pins everything a boot needs to reconstruct the
served state bitwise: the sealed segment extents, the repository as
an *ordered* list of content fingerprints (order matters — MIDAS
iteration and snapshot identity both follow it), the pattern blob's
name and SHA-256, the WAL watermark (highest batch sequence already
folded in), and the generator tag.  It is replaced only via
write-temp → fsync → ``os.replace`` → directory fsync, so a crash at
any instant leaves either the old manifest or the new one — never a
torn hybrid — and the embedded whole-document checksum turns the
residual risk (bit rot in place) into a typed
:class:`~repro.errors.StoreCorruptionError` instead of a misload.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional

from repro.errors import StoreCorruptionError
from repro.store.format import atomic_write

#: Bump when the manifest document layout changes.
MANIFEST_SCHEMA = "repro-store/v1"

#: The manifest file name under a store directory.
MANIFEST_NAME = "manifest.json"

#: Chaos site covering the manifest's atomic-rename commit.
SITE_COMMIT = "store.manifest.commit"


def _checksum(document: Dict[str, object]) -> str:
    canonical = json.dumps(document, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def write_manifest(path: str, document: Dict[str, object]) -> None:
    """Atomically replace the manifest with ``document``.

    The schema tag and self-checksum are stamped here; callers pass
    only the payload fields (``wal_seq``, ``generator``,
    ``network``, ``segments``, ``repository``, ``patterns``).
    """
    stamped = dict(document)
    stamped["schema"] = MANIFEST_SCHEMA
    stamped.pop("checksum", None)
    stamped["checksum"] = _checksum(
        {key: value for key, value in stamped.items()
         if key != "checksum"})
    data = json.dumps(stamped, sort_keys=True,
                      indent=1).encode("utf-8")
    atomic_write(path, data, SITE_COMMIT,
                 key=os.path.basename(path))


def load_manifest(path: str) -> Optional[Dict[str, object]]:
    """Read and validate the manifest; ``None`` when absent.

    An unparsable document, a schema mismatch, or a checksum
    mismatch raises :class:`~repro.errors.StoreCorruptionError` —
    the manifest is the store's root of trust, so damage here cannot
    be quarantined away.
    """
    if not os.path.exists(path):
        return None
    with open(path, "rb") as handle:
        raw = handle.read()
    try:
        document = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise StoreCorruptionError(
            f"manifest is not valid JSON: {exc}", path=path,
            detail=exc) from exc
    if not isinstance(document, dict):
        raise StoreCorruptionError(
            "manifest is not a JSON object", path=path)
    if document.get("schema") != MANIFEST_SCHEMA:
        raise StoreCorruptionError(
            f"manifest schema {document.get('schema')!r} is not "
            f"{MANIFEST_SCHEMA!r}", path=path)
    recorded = document.get("checksum")
    expected = _checksum({key: value for key, value
                          in document.items() if key != "checksum"})
    if recorded != expected:
        raise StoreCorruptionError(
            f"manifest checksum mismatch (recorded {recorded!r}, "
            f"computed {expected!r})", path=path)
    return document


__all__ = ["MANIFEST_NAME", "MANIFEST_SCHEMA", "SITE_COMMIT",
           "load_manifest", "write_manifest"]
