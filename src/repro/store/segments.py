"""Append-only, content-addressed graph segments.

Graphs live in numbered segment files (``seg-000001.seg`` …), each a
magic header plus framed :func:`repro.store.format.
encode_graph_record` payloads.  Addressing is content-based at two
levels: the manifest references repository members by the **content
fingerprint** the match cache already computes
(:func:`repro.perf.cache.graph_fingerprint`), while the store's
internal dedup key is the SHA-256 of the exact serialized record —
the fingerprint hashes *sorted* labeled content, so two graphs that
differ only in name or insertion order (state the lossless round
trip must preserve) still get distinct records.  A graph that
re-enters the repository after a remove/add cycle is stored once.

Segments are immutable once the manifest has sealed them at a byte
length; recovery compares each file against its sealed extent:

* bytes **beyond** the sealed length are an append that never reached
  a manifest commit — truncated back (the graphs they held are
  unreferenced by definition);
* an intact prefix **shorter** than the sealed length, or a
  checksum-failed frame inside it, means the sealed region itself is
  damaged — the file is renamed to ``*.quarantined`` and its graphs
  are reported dropped rather than crashing the load.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.graph.graph import Graph
from repro.store.format import (
    SCAN_CLEAN,
    SEGMENT_MAGIC,
    decode_graph_record,
    durable_append,
    encode_graph_record,
    fsync_dir,
    read_framed_file,
    truncate_file,
)

#: Roll to a fresh segment file once the active one exceeds this.
SEGMENT_ROLL_BYTES = 4 * 1024 * 1024

#: Chaos sites threaded through the segment store's durable paths.
SITE_APPEND = "store.segment.append"
SITE_READ = "store.segment.read"


def _segment_name(index: int) -> str:
    return f"seg-{index:06d}.seg"


def record_digest(record: bytes) -> str:
    """The store's exact-content address for one serialized graph."""
    return hashlib.sha256(record).hexdigest()


class SegmentStore:
    """The graph payload tier under one store directory."""

    def __init__(self, root: str,
                 roll_bytes: int = SEGMENT_ROLL_BYTES) -> None:
        self.root = str(root)
        self.roll_bytes = roll_bytes
        #: sealed + active extents, in manifest order:
        #: ``[{"name", "bytes", "records"}, ...]``
        self.entries: List[Dict[str, object]] = []
        #: fingerprints already durable in some listed segment
        self._stored: set = set()
        self._handle = None
        self._active: Optional[str] = None

    # ------------------------------------------------------- writing

    def _path(self, name: str) -> str:
        return os.path.join(self.root, name)

    def _open_active(self):
        """The active (last, under-roll-size) segment's handle."""
        if self.entries and int(self.entries[-1]["bytes"]) \
                < self.roll_bytes:
            name = str(self.entries[-1]["name"])
        else:
            index = len(self.entries) + 1
            while os.path.exists(self._path(_segment_name(index))):
                index += 1
            name = _segment_name(index)
            self.entries.append(
                {"name": name, "bytes": len(SEGMENT_MAGIC),
                 "records": 0})
        if self._handle is None or self._handle.closed \
                or self._active != name:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()
            fresh = not os.path.exists(self._path(name)) \
                or os.path.getsize(self._path(name)) == 0
            self._handle = open(self._path(name), "ab")
            if fresh:
                self._handle.write(SEGMENT_MAGIC)
                self._handle.flush()
                os.fsync(self._handle.fileno())
                fsync_dir(self.root)
            self._active = name
        return self._handle, self.entries[-1]

    def append(self, graphs: Iterable[Graph]) -> int:
        """Durably append every graph not already stored; returns the
        number of new records written."""
        written = 0
        for graph in graphs:
            record = encode_graph_record(graph)
            digest = record_digest(record)
            if digest in self._stored:
                continue
            handle, entry = self._open_active()
            frame_len = durable_append(
                handle, record, SITE_APPEND, key=graph.name,
                path=self._path(str(entry["name"])))
            entry["bytes"] = int(entry["bytes"]) + frame_len
            entry["records"] = int(entry["records"]) + 1
            self._stored.add(digest)
            written += 1
        return written

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None
        self._active = None

    # ------------------------------------------------------- reading

    def load(self, sealed: List[Dict[str, object]]
             ) -> Tuple[Dict[str, Graph], List[str], List[str]]:
        """Recover graphs from the manifest's sealed segment list.

        Returns ``(graphs_by_record_digest, quarantined, repaired)``
        where ``quarantined`` names segments whose sealed region
        failed validation (renamed aside, graphs dropped) and
        ``repaired`` names segments whose unsealed tail was truncated.
        The store's in-memory extent/digest tables are rebuilt from
        what actually survived.
        """
        self.close()
        graphs: Dict[str, Graph] = {}
        quarantined: List[str] = []
        repaired: List[str] = []
        self.entries = []
        self._stored = set()
        for item in sealed:
            name = str(item["name"])
            sealed_bytes = int(item["bytes"])
            path = self._path(name)
            if not os.path.exists(path):
                quarantined.append(name)
                continue
            payloads, valid_end, verdict = read_framed_file(
                path, SEGMENT_MAGIC, site_name=SITE_READ)
            if valid_end < sealed_bytes:
                # damage inside the sealed region: set the whole
                # file aside for forensics, drop its graphs
                os.replace(path, path + ".quarantined")
                fsync_dir(self.root)
                quarantined.append(name)
                continue
            if os.path.getsize(path) > sealed_bytes \
                    or verdict is not SCAN_CLEAN:
                # an append past the seal never reached a manifest
                # commit; roll it back to the sealed extent
                truncate_file(path, sealed_bytes)
                payloads = payloads[:int(item["records"])]
                repaired.append(name)
            entry = {"name": name, "bytes": sealed_bytes,
                     "records": int(item["records"])}
            self.entries.append(entry)
            for payload in payloads:
                graph = decode_graph_record(payload, path=path)
                digest = record_digest(payload)
                graphs[digest] = graph
                self._stored.add(digest)
        return graphs, quarantined, repaired


__all__ = ["SEGMENT_ROLL_BYTES", "SITE_APPEND", "SITE_READ",
           "SegmentStore", "record_digest"]
