"""Graphlet frequency distributions (GFD).

MIDAS uses the drift of the graphlet frequency distribution of a
repository to decide whether a batch of updates is a *minor* or
*major* modification.  This package counts connected 3- and 4-node
graphlets exactly and exposes the Euclidean drift measure.
"""

from repro.graphlets.counting import (
    GRAPHLET_KEYS,
    count_graphlets,
    gfd_distance,
    graphlet_frequency_distribution,
    repository_gfd,
)

__all__ = [
    "GRAPHLET_KEYS",
    "count_graphlets",
    "gfd_distance",
    "graphlet_frequency_distribution",
    "repository_gfd",
]
