"""Exact connected 3-/4-node graphlet counting via the ESU algorithm.

ESU (Wernicke 2006) enumerates every connected *induced* k-node
subgraph exactly once, so counting is linear in the number of
graphlet occurrences rather than in C(n, k).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

import math

from repro.graph.graph import Graph

#: canonical ordering of the 8 connected 3-/4-node graphlet types
GRAPHLET_KEYS: Tuple[str, ...] = (
    "g3_path",      # P3
    "g3_triangle",  # K3
    "g4_path",      # P4
    "g4_star",      # S3 (claw)
    "g4_cycle",     # C4
    "g4_tailed",    # paw: triangle + pendant edge
    "g4_diamond",   # K4 minus an edge
    "g4_clique",    # K4
)


def _enumerate_connected_subsets(graph: Graph, k: int
                                 ) -> Iterator[FrozenSet[int]]:
    """ESU enumeration of connected induced k-node subsets."""

    def extend(subgraph: List[int], extension: Set[int], v: int
               ) -> Iterator[FrozenSet[int]]:
        if len(subgraph) == k:
            yield frozenset(subgraph)
            return
        ext = set(extension)
        while ext:
            w = ext.pop()
            # new extension: exclusive neighbors of w greater than v
            new_ext = set(ext)
            in_subgraph = set(subgraph)
            nbrs_of_sub = {x for u in subgraph for x in graph.neighbors(u)}
            for u in graph.neighbors(w):
                if u > v and u not in in_subgraph and u not in nbrs_of_sub:
                    new_ext.add(u)
            subgraph.append(w)
            yield from extend(subgraph, new_ext, v)
            subgraph.pop()

    for v in sorted(graph.nodes()):
        extension = {u for u in graph.neighbors(v) if u > v}
        yield from extend([v], extension, v)


def _classify_3(graph: Graph, nodes: Sequence[int]) -> str:
    a, b, c = nodes
    m = (graph.has_edge(a, b) + graph.has_edge(a, c)
         + graph.has_edge(b, c))
    return "g3_triangle" if m == 3 else "g3_path"


def _classify_4(graph: Graph, nodes: Sequence[int]) -> str:
    m = 0
    degrees = [0, 0, 0, 0]
    for i in range(4):
        for j in range(i + 1, 4):
            if graph.has_edge(nodes[i], nodes[j]):
                m += 1
                degrees[i] += 1
                degrees[j] += 1
    if m == 3:
        return "g4_star" if max(degrees) == 3 else "g4_path"
    if m == 4:
        return "g4_tailed" if max(degrees) == 3 else "g4_cycle"
    if m == 5:
        return "g4_diamond"
    return "g4_clique"  # m == 6 (ESU guarantees connectivity => m >= 3)


def count_graphlets(graph: Graph) -> Dict[str, int]:
    """Exact counts of every connected 3-/4-node induced graphlet."""
    counts: Dict[str, int] = {key: 0 for key in GRAPHLET_KEYS}
    for subset in _enumerate_connected_subsets(graph, 3):
        counts[_classify_3(graph, tuple(subset))] += 1
    for subset in _enumerate_connected_subsets(graph, 4):
        counts[_classify_4(graph, tuple(subset))] += 1
    return counts


def graphlet_frequency_distribution(graph: Graph) -> Dict[str, float]:
    """Counts normalised to frequencies (all-zero for tiny graphs)."""
    counts = count_graphlets(graph)
    total = sum(counts.values())
    if total == 0:
        return {key: 0.0 for key in GRAPHLET_KEYS}
    return {key: counts[key] / total for key in GRAPHLET_KEYS}


def repository_gfd(repository: Sequence[Graph]) -> Dict[str, float]:
    """GFD of a repository: pooled graphlet counts over all graphs.

    Pooling (rather than averaging per-graph frequencies) makes the
    distribution stable when graph sizes vary, which is what MIDAS's
    drift test needs.
    """
    totals: Dict[str, int] = {key: 0 for key in GRAPHLET_KEYS}
    for graph in repository:
        for key, value in count_graphlets(graph).items():
            totals[key] += value
    grand = sum(totals.values())
    if grand == 0:
        return {key: 0.0 for key in GRAPHLET_KEYS}
    return {key: totals[key] / grand for key in GRAPHLET_KEYS}


def gfd_distance(gfd1: Dict[str, float], gfd2: Dict[str, float]) -> float:
    """Euclidean distance between two graphlet frequency distributions.

    This is the drift measure MIDAS thresholds to classify a batch of
    updates as a minor or major modification.
    """
    keys = set(gfd1) | set(gfd2)
    return math.sqrt(sum((gfd1.get(k, 0.0) - gfd2.get(k, 0.0)) ** 2
                         for k in keys))
