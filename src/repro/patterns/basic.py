"""Basic (default) patterns: edge, 2-path, triangle.

Basic patterns are the size-<=z generic topologies every VQI exposes
regardless of the data (paper §2.3).  They can be instantiated with a
concrete label alphabet or with wildcards.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.graph.generators import complete_graph, path_graph
from repro.matching.isomorphism import WILDCARD
from repro.patterns.base import Pattern


def basic_edge(label: str = WILDCARD, edge_label: str = WILDCARD) -> Pattern:
    """Single-edge pattern."""
    g = path_graph(2, label=label, edge_label=edge_label)
    g.name = "basic:edge"
    return Pattern(g, source="basic")


def basic_two_path(label: str = WILDCARD,
                   edge_label: str = WILDCARD) -> Pattern:
    """Two-edge path pattern."""
    g = path_graph(3, label=label, edge_label=edge_label)
    g.name = "basic:2-path"
    return Pattern(g, source="basic")


def basic_triangle(label: str = WILDCARD,
                   edge_label: str = WILDCARD) -> Pattern:
    """Triangle pattern."""
    g = complete_graph(3, label=label, edge_label=edge_label)
    g.name = "basic:triangle"
    return Pattern(g, source="basic")


def default_basic_patterns(label: str = WILDCARD,
                           edge_label: str = WILDCARD) -> List[Pattern]:
    """The standard basic-pattern trio (edge, 2-path, triangle)."""
    return [basic_edge(label, edge_label),
            basic_two_path(label, edge_label),
            basic_triangle(label, edge_label)]


def labeled_basic_edges(node_labels: Sequence[str],
                        edge_label: str = WILDCARD) -> List[Pattern]:
    """One single-edge pattern per unordered label pair.

    Useful when the Attribute Panel alphabet is small and the VQI
    prefers concrete basic patterns over wildcard ones.
    """
    patterns: List[Pattern] = []
    labels = sorted(set(node_labels))
    for i, a in enumerate(labels):
        for b in labels[i:]:
            g = path_graph(2, edge_label=edge_label)
            g.set_node_label(0, a)
            g.set_node_label(1, b)
            g.name = f"basic:edge:{a}-{b}"
            patterns.append(Pattern(g, source="basic"))
    return patterns
