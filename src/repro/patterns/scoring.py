"""Quality measures for canned patterns (paper §2.3).

Three characteristics make a canned pattern set useful for visual
query formulation, and all selection/maintenance algorithms in this
library optimise combinations of them:

* **coverage** — how much of the repository can be (re)constructed
  from the patterns;
* **diversity** — how structurally different the displayed patterns
  are from each other;
* **cognitive load** — how hard a displayed pattern is to interpret
  visually (larger/denser/cyclier graphs load working memory more;
  Huang et al. 2009).

Measures are normalised to [0, 1] so weighted combinations are
well-behaved.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.graph.graph import Graph, edge_key
from repro.graph.operations import triangles
from repro.matching.canonical import canonical_code
from repro.matching.isomorphism import covered_edges, is_subgraph
from repro.patterns.base import Pattern
from repro.errors import OptionError

# ----------------------------------------------------------------------
# cognitive load
# ----------------------------------------------------------------------


def cognitive_load(graph: Graph) -> float:
    """Cognitive load of one pattern, in [0, 1).

    The measure follows the ingredients the CATAPULT/TATTOO papers
    identify: edge count (more relationships to read), density (edge
    crossings and inseparability), and independent cycles (paths the
    eye must track).  It is::

        load = 1 - exp(-(m/8) * (0.5 + density) * (1 + 0.25*rank))

    where ``rank`` is the circuit rank (independent cycles).  A single
    edge scores ~0.07; a 6-clique scores ~0.99.
    """
    m = graph.size()
    if m == 0:
        return 0.0
    rank = m - graph.order() + 1  # connected patterns only
    raw = (m / 8.0) * (0.5 + graph.density()) * (1.0 + 0.25 * max(rank, 0))
    return 1.0 - math.exp(-raw)


def set_cognitive_load(patterns: Iterable[Pattern]) -> float:
    """Mean cognitive load of a pattern set (0 for the empty set)."""
    loads = [cognitive_load(p.graph) for p in patterns]
    if not loads:
        return 0.0
    return sum(loads) / len(loads)


# ----------------------------------------------------------------------
# coverage
# ----------------------------------------------------------------------


def pattern_covers(pattern: Pattern, graph: Graph) -> bool:
    """True iff the graph contains a subgraph isomorphic to the pattern."""
    return is_subgraph(pattern.graph, graph)


def graph_coverage(pattern: Pattern, repository: Sequence[Graph]) -> float:
    """Fraction of repository graphs the pattern covers."""
    if not repository:
        return 0.0
    hits = sum(1 for g in repository if pattern_covers(pattern, g))
    return hits / len(repository)


def edge_coverage(pattern: Pattern, graph: Graph,
                  max_embeddings: int = 200) -> float:
    """Fraction of the graph's edges covered by pattern embeddings."""
    if graph.size() == 0:
        return 0.0
    covered = covered_edges(pattern.graph, graph,
                            max_embeddings=max_embeddings)
    return len(covered) / graph.size()


def set_covered_edges(patterns: Iterable[Pattern], graph: Graph,
                      max_embeddings: int = 200
                      ) -> Set[Tuple[int, int]]:
    """Union of graph edges covered by any pattern in the set."""
    covered: Set[Tuple[int, int]] = set()
    for pattern in patterns:
        covered |= covered_edges(pattern.graph, graph,
                                 max_embeddings=max_embeddings)
        if len(covered) == graph.size():
            break
    return covered


def set_edge_coverage(patterns: Iterable[Pattern], graph: Graph,
                      max_embeddings: int = 200) -> float:
    """Fraction of one graph's edges covered by the pattern set."""
    if graph.size() == 0:
        return 0.0
    return len(set_covered_edges(patterns, graph,
                                 max_embeddings=max_embeddings)) / graph.size()


def set_repository_coverage(patterns: Sequence[Pattern],
                            repository: Sequence[Graph],
                            max_embeddings: int = 50) -> float:
    """Edge coverage of a whole repository by a pattern set.

    Defined as total covered edges over total edges, so large graphs
    weigh proportionally to their size (the CATAPULT convention).
    """
    total = sum(g.size() for g in repository)
    if total == 0:
        return 0.0
    covered = sum(
        len(set_covered_edges(patterns, g, max_embeddings=max_embeddings))
        for g in repository)
    return covered / total


def set_graph_coverage(patterns: Sequence[Pattern],
                       repository: Sequence[Graph]) -> float:
    """Fraction of repository graphs covered by >= 1 pattern."""
    if not repository:
        return 0.0
    hits = 0
    for g in repository:
        if any(pattern_covers(p, g) for p in patterns):
            hits += 1
    return hits / len(repository)


# ----------------------------------------------------------------------
# structural features and similarity
# ----------------------------------------------------------------------


def feature_vector(graph: Graph) -> Dict[str, float]:
    """Sparse structural feature vector used for fast similarity.

    Features: node-label counts, labeled-edge-type counts, degree
    histogram, triangle count, circuit rank, and size terms.
    """
    features: Dict[str, float] = {}
    for node in graph.nodes():
        key = f"nl:{graph.node_label(node)}"
        features[key] = features.get(key, 0.0) + 1.0
        dkey = f"deg:{min(graph.degree(node), 6)}"
        features[dkey] = features.get(dkey, 0.0) + 1.0
    for u, v in graph.edges():
        a, b = sorted((graph.node_label(u), graph.node_label(v)))
        key = f"el:{a}|{graph.edge_label(u, v)}|{b}"
        features[key] = features.get(key, 0.0) + 1.0
    # 2-path label contexts: centre label with sorted endpoint labels
    for centre in graph.nodes():
        nbrs = sorted(graph.neighbors(centre))
        for i, v in enumerate(nbrs):
            for w in nbrs[i + 1:]:
                a, b = sorted((graph.node_label(v), graph.node_label(w)))
                key = f"p2:{a}|{graph.node_label(centre)}|{b}"
                features[key] = features.get(key, 0.0) + 1.0
    features["tri"] = float(len(triangles(graph)))
    features["rank"] = float(max(graph.size() - graph.order() + 1, 0))
    features["n"] = float(graph.order())
    features["m"] = float(graph.size())
    return features


def cosine_similarity(f1: Dict[str, float], f2: Dict[str, float]) -> float:
    """Cosine similarity of two sparse feature vectors."""
    if not f1 or not f2:
        return 0.0
    dot = sum(value * f2.get(key, 0.0) for key, value in f1.items())
    norm1 = math.sqrt(sum(v * v for v in f1.values()))
    norm2 = math.sqrt(sum(v * v for v in f2.values()))
    if norm1 == 0.0 or norm2 == 0.0:
        return 0.0
    return dot / (norm1 * norm2)


def _connected_edge_subsets(graph: Graph, k: int
                            ) -> List[FrozenSet[Tuple[int, int]]]:
    """All connected edge subsets of exactly k edges (as frozensets)."""
    edges = [edge_key(u, v) for u, v in graph.edges()]
    adjacency: Dict[Tuple[int, int], Set[Tuple[int, int]]] = {}
    for e in edges:
        adjacency[e] = set()
    for e1, e2 in combinations(edges, 2):
        if set(e1) & set(e2):
            adjacency[e1].add(e2)
            adjacency[e2].add(e1)
    results: Set[FrozenSet[Tuple[int, int]]] = set()
    frontier: Set[FrozenSet[Tuple[int, int]]] = {
        frozenset([e]) for e in edges}
    size = 1
    while size < k and frontier:
        next_frontier: Set[FrozenSet[Tuple[int, int]]] = set()
        for subset in frontier:
            reachable: Set[Tuple[int, int]] = set()
            for e in subset:
                reachable |= adjacency[e]
            for e in reachable - subset:
                next_frontier.add(subset | {e})
        frontier = next_frontier
        size += 1
    if size == k:
        results = frontier
    return sorted(results, key=sorted)


_MCS_CACHE: Dict[Tuple[str, str], int] = {}

#: largest common subgraph size (in edges) the MCS search will certify
MCS_EDGE_CAP = 8


def mcs_edge_count(g1: Graph, g2: Graph, cap: int = MCS_EDGE_CAP) -> int:
    """Edges in the maximum common connected (partial) subgraph.

    Exact up to ``cap`` edges: enumerates connected edge subgraphs of
    the smaller graph from large to small and tests embedding into the
    other.  Results are memoised on canonical codes.
    """
    small, big = (g1, g2) if g1.size() <= g2.size() else (g2, g1)
    limit = min(small.size(), cap)
    if limit == 0:
        return 0
    key = (canonical_code(small), canonical_code(big))
    if key in _MCS_CACHE:
        return _MCS_CACHE[key]
    from repro.graph.operations import edge_subgraph
    result = 0
    for k in range(limit, 0, -1):
        seen_codes: Set[str] = set()
        for subset in _connected_edge_subsets(small, k):
            sub = edge_subgraph(small, subset)
            code = canonical_code(sub)
            if code in seen_codes:
                continue
            seen_codes.add(code)
            if is_subgraph(sub, big):
                result = k
                break
        if result:
            break
    _MCS_CACHE[key] = result
    return result


def pattern_similarity(p1: Pattern, p2: Pattern,
                       method: str = "feature") -> float:
    """Structural similarity of two patterns, in [0, 1].

    ``method="feature"`` uses cosine similarity of structural feature
    vectors (fast, used inside selection loops); ``method="mcs"`` uses
    the exact maximum-common-subgraph ratio (slower, used in reported
    quality figures); ``method="ged"`` uses normalised exact graph
    edit distance (strictest; small patterns only).
    """
    if p1.code == p2.code:
        return 1.0
    if method == "feature":
        return cosine_similarity(feature_vector(p1.graph),
                                 feature_vector(p2.graph))
    if method == "mcs":
        common = mcs_edge_count(p1.graph, p2.graph)
        denom = max(p1.size(), p2.size())
        if denom == 0:
            return 1.0 if p1.order() == p2.order() else 0.0
        return common / denom
    if method == "ged":
        from repro.matching.edit_distance import ged_similarity
        return ged_similarity(p1.graph, p2.graph)
    raise OptionError(f"unknown similarity method {method!r}")


def set_diversity(patterns: Sequence[Pattern],
                  method: str = "feature") -> float:
    """Diversity of a pattern set: 1 - mean pairwise similarity.

    Sets with fewer than two patterns have diversity 1.0 by
    convention (nothing to be redundant with).
    """
    if len(patterns) < 2:
        return 1.0
    total = 0.0
    pairs = 0
    for p1, p2 in combinations(patterns, 2):
        total += pattern_similarity(p1, p2, method=method)
        pairs += 1
    return 1.0 - total / pairs


# ----------------------------------------------------------------------
# combined scores
# ----------------------------------------------------------------------


class ScoreWeights:
    """Weights of the three quality characteristics (sum need not be 1)."""

    __slots__ = ("coverage", "diversity", "cognitive_load")

    def __init__(self, coverage: float = 1.0, diversity: float = 1.0,
                 cognitive_load: float = 0.5) -> None:
        if min(coverage, diversity, cognitive_load) < 0:
            raise OptionError("score weights must be non-negative")
        self.coverage = coverage
        self.diversity = diversity
        self.cognitive_load = cognitive_load

    def __repr__(self) -> str:
        return (f"ScoreWeights(coverage={self.coverage}, "
                f"diversity={self.diversity}, "
                f"cognitive_load={self.cognitive_load})")


DEFAULT_WEIGHTS = ScoreWeights()


def pattern_set_score(patterns: Sequence[Pattern],
                      repository: Sequence[Graph],
                      weights: ScoreWeights = DEFAULT_WEIGHTS,
                      similarity_method: str = "feature",
                      max_embeddings: int = 50) -> float:
    """Overall quality of a pattern set over a repository, in [0, 1]-ish.

    ``w_cov * coverage + w_div * diversity + w_cl * (1 - load)``,
    normalised by the weight sum.  This is the objective both the
    greedy selectors and the MIDAS swapping maintenance maximise.
    """
    weight_sum = (weights.coverage + weights.diversity
                  + weights.cognitive_load)
    if weight_sum == 0:
        return 0.0
    cov = set_repository_coverage(patterns, repository,
                                  max_embeddings=max_embeddings)
    div = set_diversity(patterns, method=similarity_method)
    load = set_cognitive_load(patterns)
    score = (weights.coverage * cov + weights.diversity * div
             + weights.cognitive_load * (1.0 - load))
    return score / weight_sum
