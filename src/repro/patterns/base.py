"""Pattern and PatternSet: the content of a VQI's Pattern Panel.

A *pattern* is a small connected graph shown to the user as a reusable
building block for visual query formulation.  Patterns of size at most
``BASIC_SIZE_THRESHOLD`` are *basic* (edge, 2-path, triangle — generic
topologies every user knows); larger ones are *canned* and must be
mined from the data (the NP-hard selection problem CATAPULT and TATTOO
solve).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import BudgetError, GraphError
from repro.graph.graph import Graph
from repro.graph.operations import is_connected
from repro.matching.canonical import canonical_code

#: patterns with at most this many nodes are "basic" (paper: z <= 3)
BASIC_SIZE_THRESHOLD = 3


class Pattern:
    """An immutable-by-convention canned or basic pattern.

    Parameters
    ----------
    graph:
        The pattern structure; must be connected and non-empty.
    source:
        Free-form provenance tag (e.g. ``"catapult:cluster3"``).
    """

    __slots__ = ("graph", "source", "_code")

    def __init__(self, graph: Graph, source: str = "") -> None:
        if graph.order() == 0:
            raise GraphError("a pattern cannot be empty")
        if not is_connected(graph):
            raise GraphError("a pattern must be connected")
        self.graph = graph
        self.source = source
        self._code: Optional[str] = None

    @property
    def code(self) -> str:
        """Canonical code (computed lazily, cached)."""
        if self._code is None:
            self._code = canonical_code(self.graph)
        return self._code

    def order(self) -> int:
        return self.graph.order()

    def size(self) -> int:
        return self.graph.size()

    @property
    def is_basic(self) -> bool:
        """True for generic small patterns (size <= z)."""
        return self.graph.order() <= BASIC_SIZE_THRESHOLD

    @property
    def is_canned(self) -> bool:
        return not self.is_basic

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self.code == other.code

    def __hash__(self) -> int:
        return hash(self.code)

    def __repr__(self) -> str:
        kind = "basic" if self.is_basic else "canned"
        return (f"<Pattern {kind} n={self.order()} m={self.size()}"
                f" source={self.source!r}>")


class PatternBudget:
    """Budget ``b`` for a Pattern Panel (paper §2.2/§2.3).

    Parameters
    ----------
    max_patterns:
        Number of canned patterns the panel can display.
    min_size, max_size:
        Permissible pattern size range, in nodes.
    """

    __slots__ = ("max_patterns", "min_size", "max_size")

    def __init__(self, max_patterns: int, min_size: int = 4,
                 max_size: int = 12) -> None:
        if max_patterns < 1:
            raise BudgetError("budget must allow at least one pattern")
        if not (1 <= min_size <= max_size):
            raise BudgetError(
                f"invalid size range [{min_size}, {max_size}]")
        self.max_patterns = max_patterns
        self.min_size = min_size
        self.max_size = max_size

    def admits(self, graph: Graph) -> bool:
        """True iff the graph's node count is within the size range."""
        return self.min_size <= graph.order() <= self.max_size

    def __repr__(self) -> str:
        return (f"PatternBudget(max_patterns={self.max_patterns}, "
                f"min_size={self.min_size}, max_size={self.max_size})")


class PatternSet:
    """An ordered, duplicate-free collection of patterns.

    Deduplication is by canonical code, so two isomorphic patterns
    cannot coexist in the set regardless of node numbering.
    """

    def __init__(self, patterns: Iterable[Pattern] = ()) -> None:
        self._patterns: List[Pattern] = []
        self._by_code: Dict[str, Pattern] = {}
        for pattern in patterns:
            self.add(pattern)

    def add(self, pattern: Pattern) -> bool:
        """Add a pattern; returns False if an isomorphic one exists."""
        if pattern.code in self._by_code:
            return False
        self._by_code[pattern.code] = pattern
        self._patterns.append(pattern)
        return True

    def remove(self, pattern: Pattern) -> bool:
        """Remove a pattern (by isomorphism class); False if absent."""
        existing = self._by_code.pop(pattern.code, None)
        if existing is None:
            return False
        self._patterns.remove(existing)
        return True

    def replace(self, old: Pattern, new: Pattern) -> bool:
        """Swap ``old`` for ``new`` preserving position; False on failure.

        Fails (without modification) if ``old`` is absent or ``new`` is
        already present.
        """
        if old.code not in self._by_code or new.code in self._by_code:
            return False
        existing = self._by_code.pop(old.code)
        index = self._patterns.index(existing)
        self._patterns[index] = new
        self._by_code[new.code] = new
        return True

    def __contains__(self, pattern: Pattern) -> bool:
        return pattern.code in self._by_code

    def __iter__(self) -> Iterator[Pattern]:
        return iter(self._patterns)

    def __len__(self) -> int:
        return len(self._patterns)

    def __getitem__(self, index: int) -> Pattern:
        return self._patterns[index]

    def codes(self) -> List[str]:
        return [p.code for p in self._patterns]

    def graphs(self) -> List[Graph]:
        return [p.graph for p in self._patterns]

    def basic(self) -> "PatternSet":
        return PatternSet(p for p in self._patterns if p.is_basic)

    def canned(self) -> "PatternSet":
        return PatternSet(p for p in self._patterns if p.is_canned)

    def copy(self) -> "PatternSet":
        return PatternSet(self._patterns)

    def sizes(self) -> List[Tuple[int, int]]:
        """(nodes, edges) per pattern, in display order."""
        return [(p.order(), p.size()) for p in self._patterns]

    def __repr__(self) -> str:
        return f"<PatternSet k={len(self._patterns)}>"
