"""Greedy pattern-set selection.

Both CATAPULT (over candidates walked out of cluster summary graphs)
and TATTOO (over candidates extracted from the truss decomposition)
finish with a greedy sweep that maximises the pattern-set score —
coverage plus diversity minus cognitive load — under the budget.
Because the coverage term is monotone submodular, greedy achieves the
constant-factor approximation (1/e for the regularised non-monotone
objective) that TATTOO proves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import BudgetError, WorkerFailure
from repro.obs import metrics, span
from repro.resilience.deadline import UNBOUNDED, Deadline
from repro.patterns.base import Pattern, PatternBudget, PatternSet
from repro.patterns.index import CoverageIndex
from repro.perf.executor import resolve_workers
from repro.patterns.scoring import (
    DEFAULT_WEIGHTS,
    ScoreWeights,
    cognitive_load,
    pattern_similarity,
)


class SetScorer:
    """Incremental pattern-set score against a coverage index.

    ``score(S) = (w_cov * cov(S) + w_div * div(S) + w_cl * (1 - load(S)))
    / (w_cov + w_div + w_cl)`` — the same objective as
    :func:`repro.patterns.scoring.pattern_set_score`, but with
    coverage answered by the index and pairwise similarities cached.
    """

    def __init__(self, index: CoverageIndex,
                 weights: ScoreWeights = DEFAULT_WEIGHTS,
                 similarity_method: str = "feature") -> None:
        self.index = index
        self.weights = weights
        self.similarity_method = similarity_method
        self._sim_cache: Dict[Tuple[str, str], float] = {}
        self._load_cache: Dict[str, float] = {}

    def _similarity(self, p1: Pattern, p2: Pattern) -> float:
        key = (p1.code, p2.code) if p1.code <= p2.code else (p2.code,
                                                             p1.code)
        if key not in self._sim_cache:
            self._sim_cache[key] = pattern_similarity(
                p1, p2, method=self.similarity_method)
        return self._sim_cache[key]

    def _load(self, pattern: Pattern) -> float:
        if pattern.code not in self._load_cache:
            self._load_cache[pattern.code] = cognitive_load(pattern.graph)
        return self._load_cache[pattern.code]

    def diversity(self, patterns: Sequence[Pattern]) -> float:
        if len(patterns) < 2:
            return 1.0
        total = 0.0
        pairs = 0
        for i, p1 in enumerate(patterns):
            for p2 in patterns[i + 1:]:
                total += self._similarity(p1, p2)
                pairs += 1
        return 1.0 - total / pairs

    def mean_load(self, patterns: Sequence[Pattern]) -> float:
        if not patterns:
            return 0.0
        return sum(self._load(p) for p in patterns) / len(patterns)

    def score(self, patterns: Sequence[Pattern]) -> float:
        w = self.weights
        weight_sum = w.coverage + w.diversity + w.cognitive_load
        if weight_sum == 0:
            return 0.0
        cov = self.index.set_coverage(patterns)
        div = self.diversity(patterns)
        load = self.mean_load(patterns)
        return (w.coverage * cov + w.diversity * div
                + w.cognitive_load * (1.0 - load)) / weight_sum


class SelectionResult:
    """Selected patterns plus the per-round score trajectory.

    ``complete`` is False when the sweep stopped early on an expired
    :class:`repro.resilience.Deadline`; ``faults`` counts candidate
    evaluations dropped because scoring raised a
    :class:`repro.errors.WorkerFailure` (a crashed matcher call, or
    an injected one) — both feed the pipeline completion report.
    """

    __slots__ = ("patterns", "score", "trajectory", "considered",
                 "complete", "faults")

    def __init__(self, patterns: PatternSet, score: float,
                 trajectory: List[float], considered: int,
                 complete: bool = True, faults: int = 0) -> None:
        self.patterns = patterns
        self.score = score
        self.trajectory = trajectory
        self.considered = considered
        self.complete = complete
        self.faults = faults

    def __repr__(self) -> str:
        state = "" if self.complete else " partial"
        return (f"<SelectionResult k={len(self.patterns)} "
                f"score={self.score:.3f}{state}>")


def greedy_select(candidates: Sequence[Pattern], budget: PatternBudget,
                  scorer: SetScorer,
                  seed_patterns: Sequence[Pattern] = (),
                  improve_only: bool = False,
                  deadline: Deadline = UNBOUNDED,
                  workers: Optional[int] = None) -> SelectionResult:
    """Greedily pick up to ``budget.max_patterns`` candidates.

    Each round adds the candidate whose inclusion maximises the set
    score.  By default the budget is *filled* (a Pattern Panel shows
    its full complement even when the marginal candidate slightly
    lowers the combined score); with ``improve_only=True`` the sweep
    stops at the first round that cannot improve the score.

    ``seed_patterns`` are treated as already selected (they count
    against the budget) — MIDAS uses this to extend a maintained set.

    ``workers`` > 1 pre-indexes the admissible candidates through
    :meth:`repro.patterns.index.CoverageIndex.add_patterns`, fanning
    the covered-edge computations out over a pool in cache-merge mode
    before the (inherently sequential) sweep starts.  Round one
    scores every admissible candidate anyway, so pre-indexing changes
    which process computes each entry but not a single result.

    The sweep is an anytime algorithm: it always completes at least
    one round, then polls ``deadline`` between rounds and returns its
    best-so-far set (``complete=False``) once the budget is gone.  A
    candidate whose evaluation raises :class:`repro.errors.
    WorkerFailure` is dropped from that round and counted in
    ``faults`` instead of aborting the sweep.
    """
    admissible = [c for c in candidates if budget.admits(c.graph)]
    if workers is not None and resolve_workers(workers) > 1:
        scorer.index.add_patterns(admissible, workers=workers,
                                  deadline=deadline)
    with span("patterns.greedy_select",
              candidates=len(admissible)) as sweep:
        selected: List[Pattern] = list(seed_patterns)
        if len(selected) > budget.max_patterns:
            raise BudgetError("seed patterns already exceed the budget")
        chosen_codes = {p.code for p in selected}
        trajectory: List[float] = []
        evaluations = 0
        faults = 0
        complete = True
        current = scorer.score(selected) if selected else 0.0
        while len(selected) < budget.max_patterns:
            if trajectory and deadline.check("patterns.greedy_select"):
                complete = False
                break
            best: Optional[Pattern] = None
            best_score = float("-inf")
            for candidate in admissible:
                if candidate.code in chosen_codes:
                    continue
                try:
                    score = scorer.score(selected + [candidate])
                except WorkerFailure:
                    faults += 1
                    metrics.inc("patterns.greedy.faults")
                    continue
                evaluations += 1
                if score > best_score:
                    best_score = score
                    best = candidate
            if best is None:
                break
            if improve_only and best_score <= current + 1e-12:
                break
            selected.append(best)
            chosen_codes.add(best.code)
            current = best_score
            trajectory.append(current)
        sweep.add("rounds", len(trajectory))
        sweep.add("evaluations", evaluations)
        sweep.add("selected", len(selected))
        if faults:
            sweep.add("faults", faults)
        if not complete:
            sweep.add("partial", "true")
    metrics.inc("patterns.greedy.calls")
    metrics.inc("patterns.greedy.evaluations", evaluations)
    return SelectionResult(PatternSet(selected), current, trajectory,
                           considered=len(admissible),
                           complete=complete, faults=faults)


def exhaustive_select(candidates: Sequence[Pattern],
                      budget: PatternBudget,
                      scorer: SetScorer) -> SelectionResult:
    """Exact optimum by exhaustive search (small instances only).

    Used by the E10 approximation-quality experiment as the oracle
    against which greedy's ratio is measured.
    """
    from itertools import combinations

    admissible = [c for c in candidates if budget.admits(c.graph)]
    # dedup isomorphic candidates: they contribute identically
    unique: List[Pattern] = []
    seen: set[str] = set()
    for candidate in admissible:
        if candidate.code not in seen:
            seen.add(candidate.code)
            unique.append(candidate)
    if len(unique) > 18:
        raise BudgetError(
            f"exhaustive search over {len(unique)} candidates is "
            "intractable; this oracle is for small instances")
    best_patterns: Sequence[Pattern] = ()
    best_score = 0.0
    for k in range(1, budget.max_patterns + 1):
        for combo in combinations(unique, k):
            score = scorer.score(list(combo))
            if score > best_score:
                best_score = score
                best_patterns = combo
    return SelectionResult(PatternSet(best_patterns), best_score, [],
                           considered=len(unique))
