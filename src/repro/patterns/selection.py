"""Greedy pattern-set selection (lazy-greedy/CELF by default).

Both CATAPULT (over candidates walked out of cluster summary graphs)
and TATTOO (over candidates extracted from the truss decomposition)
finish with a greedy sweep that maximises the pattern-set score —
coverage plus diversity minus cognitive load — under the budget.
Because the coverage term is monotone submodular, greedy achieves the
constant-factor approximation (1/e for the regularised non-monotone
objective) that TATTOO proves.

The sweep runs in one of two modes, selected process-wide through the
``REPRO_SELECT`` environment variable:

* ``lazy`` (default) — incremental scoring plus CELF lazy
  evaluation.  The scorer keeps a running per-edge best-utility map,
  pairwise-similarity sum, and load sum, so one candidate evaluation
  costs O(|cover(c)| + k) instead of O(k·|cover| + k²); a max-heap of
  stale upper bounds then skips most evaluations outright.
* ``naive`` — the original quadratic sweep, kept as the oracle: every
  round re-scores every candidate through :meth:`SetScorer.score`.

Both modes produce **byte-identical** pattern sets, scores, and
trajectories: every score either mode computes is built from the same
floating-point folds in the same order (DESIGN.md, "Selection"), and
the lazy sweep's tie-breaking reproduces the naive sweep's
first-max-in-admissible-order rule exactly.  ``bench_runner.py``
gates the equivalence on every benchmark workload.
"""

from __future__ import annotations

import heapq
import os
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import BudgetError, OptionError, WorkerFailure
from repro.obs import metrics, span
from repro.resilience.chaos import site as chaos_site
from repro.resilience.deadline import UNBOUNDED, Deadline
from repro.patterns.base import Pattern, PatternBudget, PatternSet
from repro.patterns.index import CoverageIndex
from repro.perf.executor import resolve_workers
from repro.patterns.scoring import (
    DEFAULT_WEIGHTS,
    ScoreWeights,
    cognitive_load,
    pattern_similarity,
)

#: Environment variable selecting the sweep implementation.
SELECT_ENV = "REPRO_SELECT"

#: Recognised ``REPRO_SELECT`` values.
SELECT_MODES = ("lazy", "naive")

#: Bound on the scorer's pairwise-similarity LRU cache (same
#: discipline as :class:`repro.perf.cache.MatchCache`: least recently
#: used entries are evicted once the cache is full).
SIM_CACHE_MAX_ENTRIES = 65_536

#: Candidate evaluations between deadline polls inside one round.
#: Together with the between-rounds poll this keeps the anytime
#: contract at ladder scale, where a single round can outlive the
#: whole budget; the "at least one evaluation" guarantee is intact
#: because the first poll can only fire at evaluation 64.
DEADLINE_POLL_EVERY = 64

#: Chaos-injection site armed per candidate evaluation (keyed by the
#: candidate's canonical code, attempt = prior evaluations of it).
SELECT_SITE = "patterns.select"


def selection_mode() -> str:
    """The sweep implementation chosen via ``REPRO_SELECT``."""
    mode = os.environ.get(SELECT_ENV, "lazy").strip().lower()
    if mode not in SELECT_MODES:
        raise OptionError(
            f"{SELECT_ENV} must be one of {SELECT_MODES}, got {mode!r}")
    return mode


class SetScorer:
    """Incremental pattern-set score against a coverage index.

    ``score(S) = (w_cov * cov(S) + w_div * div(S) + w_cl * (1 - load(S)))
    / (w_cov + w_div + w_cl)`` — the same objective as
    :func:`repro.patterns.scoring.pattern_set_score`, but with
    coverage answered by the index and pairwise similarities cached
    (LRU-bounded to ``sim_cache_entries``).

    The scorer exists in two layers.  The **oracle** layer is
    :meth:`score`: stateless, evaluates any pattern sequence.  The
    **incremental** layer is :meth:`commit` / :meth:`rollback` /
    :meth:`marginal_score` / :meth:`committed_score`: a sweep commits
    its selections one by one and each marginal evaluation reuses the
    committed per-edge best-utility map and running similarity/load
    sums.  Both layers accumulate in *commit order* — per pattern, the
    raw coverage gain is folded from 0.0 over its covered edges, the
    similarities to all earlier patterns are folded from 0.0, and each
    total is added to the running sum in one addition — so
    ``marginal_score(c)`` after committing ``S`` is bitwise equal to
    ``score(list(S) + [c])``.
    """

    def __init__(self, index: CoverageIndex,
                 weights: ScoreWeights = DEFAULT_WEIGHTS,
                 similarity_method: str = "feature",
                 sim_cache_entries: int = SIM_CACHE_MAX_ENTRIES) -> None:
        self.index = index
        self.weights = weights
        self.similarity_method = similarity_method
        self.sim_cache_entries = sim_cache_entries
        self._sim_cache: "OrderedDict[Tuple[str, str], float]" = \
            OrderedDict()
        self._sim_hits = 0
        self._sim_misses = 0
        self._sim_evictions = 0
        self._load_cache: Dict[str, float] = {}
        # incremental sweep state (commit/rollback/marginal_score)
        self._committed: List[Pattern] = []
        self._edge_best: Dict[int, Dict[Tuple[int, int], float]] = {}
        self._cov_sum = 0.0
        self._sim_sum = 0.0
        self._load_sum = 0.0
        self._undo: List[Tuple[List[Tuple[int, Tuple[int, int],
                                          Optional[float]]],
                               float, float, float]] = []

    # -- caches -----------------------------------------------------------
    def _similarity(self, p1: Pattern, p2: Pattern) -> float:
        key = (p1.code, p2.code) if p1.code <= p2.code else (p2.code,
                                                             p1.code)
        cached = self._sim_cache.get(key)
        if cached is not None:
            self._sim_cache.move_to_end(key)
            self._sim_hits += 1
            return cached
        self._sim_misses += 1
        value = pattern_similarity(p1, p2,
                                   method=self.similarity_method)
        self._sim_cache[key] = value
        while len(self._sim_cache) > self.sim_cache_entries:
            self._sim_cache.popitem(last=False)
            self._sim_evictions += 1
        return value

    def _load(self, pattern: Pattern) -> float:
        if pattern.code not in self._load_cache:
            self._load_cache[pattern.code] = cognitive_load(pattern.graph)
        return self._load_cache[pattern.code]

    def sim_cache_stats(self) -> Dict[str, float]:
        """Occupancy and hit counters of the similarity LRU cache."""
        total = self._sim_hits + self._sim_misses
        return {
            "entries": len(self._sim_cache),
            "max_entries": self.sim_cache_entries,
            "hits": self._sim_hits,
            "misses": self._sim_misses,
            "evictions": self._sim_evictions,
            "hit_rate": self._sim_hits / total if total else 0.0,
        }

    # -- stateless oracle -------------------------------------------------
    def diversity(self, patterns: Sequence[Pattern]) -> float:
        if len(patterns) < 2:
            return 1.0
        total = 0.0
        pairs = 0
        for i, p1 in enumerate(patterns):
            for p2 in patterns[i + 1:]:
                total += self._similarity(p1, p2)
                pairs += 1
        return 1.0 - total / pairs

    def mean_load(self, patterns: Sequence[Pattern]) -> float:
        if not patterns:
            return 0.0
        return sum(self._load(p) for p in patterns) / len(patterns)

    def _sim_fold(self, committed: Sequence[Pattern],
                  candidate: Pattern) -> float:
        """Similarities of ``candidate`` to ``committed``, folded from
        0.0 in commit order (the canonical accumulation)."""
        total = 0.0
        for previous in committed:
            total += self._similarity(previous, candidate)
        return total

    def _combined(self, size: int, cov_sum: float, sim_sum: float,
                  load_sum: float) -> float:
        """The set score from commit-order accumulated components."""
        w = self.weights
        weight_sum = w.coverage + w.diversity + w.cognitive_load
        if weight_sum == 0:
            return 0.0
        total_edges = self.index.total_edges
        cov = cov_sum / total_edges if total_edges else 0.0
        if size < 2:
            div = 1.0
        else:
            pairs = size * (size - 1) // 2
            div = 1.0 - sim_sum / pairs
        load = load_sum / size if size else 0.0
        return (w.coverage * cov + w.diversity * div
                + w.cognitive_load * (1.0 - load)) / weight_sum

    def score(self, patterns: Sequence[Pattern]) -> float:
        """Score any pattern sequence (the stateless oracle).

        Folds the sequence exactly as :meth:`commit` would, without
        touching the committed state, so ``score(list(S) + [c])`` is
        bitwise equal to ``marginal_score(c)`` after committing ``S``.
        """
        edge_best: Dict[int, Dict[Tuple[int, int], float]] = {}
        committed: List[Pattern] = []
        cov_sum = 0.0
        sim_sum = 0.0
        load_sum = 0.0
        for pattern in patterns:
            cov_sum += self.index.apply_gain(pattern, edge_best)
            sim_sum += self._sim_fold(committed, pattern)
            load_sum += self._load(pattern)
            committed.append(pattern)
        return self._combined(len(committed), cov_sum, sim_sum,
                              load_sum)

    # -- incremental layer ------------------------------------------------
    @property
    def committed(self) -> Tuple[Pattern, ...]:
        """The committed pattern sequence, in commit order."""
        return tuple(self._committed)

    def reset(self) -> None:
        """Clear the committed sweep state (caches survive)."""
        self._committed.clear()
        self._edge_best.clear()
        self._undo.clear()
        self._cov_sum = 0.0
        self._sim_sum = 0.0
        self._load_sum = 0.0

    def _marginal_parts(self, candidate: Pattern
                        ) -> Tuple[float, float, float, float]:
        """(gain, sims, load, score) of adding ``candidate`` to the
        committed set, without committing it."""
        gain = self.index.marginal_gain(candidate, self._edge_best)
        sims = self._sim_fold(self._committed, candidate)
        load = self._load(candidate)
        score = self._combined(len(self._committed) + 1,
                               self._cov_sum + gain,
                               self._sim_sum + sims,
                               self._load_sum + load)
        return gain, sims, load, score

    def marginal_score(self, candidate: Pattern) -> float:
        """Score of the committed set with ``candidate`` appended.

        Costs O(|cover(candidate)| + k) against the committed state —
        the incremental replacement for ``score(committed + [c])``,
        with a bitwise-equal result.
        """
        return self._marginal_parts(candidate)[3]

    def commit(self, candidate: Pattern) -> float:
        """Append ``candidate`` to the committed set.

        Folds its gain into the per-edge best-utility map (recording
        an undo entry for :meth:`rollback`) and advances the running
        coverage/similarity/load sums by the same additions the oracle
        fold performs.  Returns the new committed score.
        """
        undo_edges: List[Tuple[int, Tuple[int, int],
                               Optional[float]]] = []
        gain = self.index.apply_gain(candidate, self._edge_best,
                                     undo_edges)
        sims = self._sim_fold(self._committed, candidate)
        load = self._load(candidate)
        self._undo.append((undo_edges, self._cov_sum, self._sim_sum,
                           self._load_sum))
        self._cov_sum += gain
        self._sim_sum += sims
        self._load_sum += load
        self._committed.append(candidate)
        return self.committed_score()

    def rollback(self) -> Pattern:
        """Undo the most recent :meth:`commit`; returns the pattern.

        Restores the per-edge map and the running sums to their exact
        previous values (the sums are restored from saved copies, not
        recomputed, so a commit/rollback pair is a true no-op).
        """
        if not self._committed:
            raise BudgetError("rollback on an empty committed set")
        undo_edges, cov_sum, sim_sum, load_sum = self._undo.pop()
        for idx, edge, previous in reversed(undo_edges):
            bucket = self._edge_best[idx]
            if previous is None:
                del bucket[edge]
            else:
                bucket[edge] = previous
        self._cov_sum = cov_sum
        self._sim_sum = sim_sum
        self._load_sum = load_sum
        return self._committed.pop()

    def committed_score(self) -> float:
        """Score of the committed set (bitwise equal to
        ``score(list(self.committed))``)."""
        return self._combined(len(self._committed), self._cov_sum,
                              self._sim_sum, self._load_sum)


class SelectionResult:
    """Selected patterns plus the per-round score trajectory.

    ``complete`` is False when the sweep stopped early on an expired
    :class:`repro.resilience.Deadline`; ``faults`` counts candidate
    evaluations dropped because scoring raised a
    :class:`repro.errors.WorkerFailure` (a crashed matcher call, or
    an injected one) — both feed the pipeline completion report.
    ``evaluations`` counts exact candidate evaluations the sweep
    performed (the lazy sweep's headline saving).
    """

    __slots__ = ("patterns", "score", "trajectory", "considered",
                 "complete", "faults", "evaluations")

    def __init__(self, patterns: PatternSet, score: float,
                 trajectory: List[float], considered: int,
                 complete: bool = True, faults: int = 0,
                 evaluations: int = 0) -> None:
        self.patterns = patterns
        self.score = score
        self.trajectory = trajectory
        self.considered = considered
        self.complete = complete
        self.faults = faults
        self.evaluations = evaluations

    def __repr__(self) -> str:
        state = "" if self.complete else " partial"
        return (f"<SelectionResult k={len(self.patterns)} "
                f"score={self.score:.3f}{state}>")


class _Sweep:
    """Mutable state one greedy sweep accumulates (either mode)."""

    __slots__ = ("selected", "chosen_codes", "trajectory", "current",
                 "evaluations", "faults", "complete", "saved",
                 "heap_peak", "attempts")

    def __init__(self, selected: List[Pattern]) -> None:
        self.selected = selected
        self.chosen_codes = {p.code for p in selected}
        self.trajectory: List[float] = []
        self.current = 0.0
        self.evaluations = 0
        self.faults = 0
        self.complete = True
        self.saved = 0
        self.heap_peak = 0
        self.attempts: Dict[str, int] = {}

    def probe(self, candidate: Pattern) -> None:
        """Arm the per-candidate chaos site (count one attempt)."""
        attempt = self.attempts.get(candidate.code, 0)
        self.attempts[candidate.code] = attempt + 1
        if chaos_site(SELECT_SITE, key=candidate.code, attempt=attempt):
            raise WorkerFailure(SELECT_SITE, key=candidate.code,
                                attempt=attempt, kind="corrupt",
                                cause="corrupted candidate evaluation")

    def fault(self) -> None:
        self.faults += 1
        metrics.inc("patterns.greedy.faults")

    def mid_round_expired(self, deadline: Deadline) -> bool:
        """Poll the deadline every ``DEADLINE_POLL_EVERY`` evaluations."""
        return (self.evaluations > 0
                and self.evaluations % DEADLINE_POLL_EVERY == 0
                and deadline.check("patterns.greedy_select"))

    def take(self, winner: Pattern, score: float) -> None:
        self.selected.append(winner)
        self.chosen_codes.add(winner.code)
        self.current = score
        self.trajectory.append(score)


def _naive_sweep(admissible: Sequence[Pattern], budget: PatternBudget,
                 scorer: SetScorer, sweep: _Sweep, improve_only: bool,
                 deadline: Deadline) -> None:
    """The quadratic oracle sweep: full re-score of every candidate,
    every round, through the stateless :meth:`SetScorer.score`."""
    selected = sweep.selected
    sweep.current = scorer.score(selected) if selected else 0.0
    while len(selected) < budget.max_patterns:
        if sweep.trajectory and deadline.check("patterns.greedy_select"):
            sweep.complete = False
            break
        best: Optional[Pattern] = None
        best_score = float("-inf")
        expired = False
        for candidate in admissible:
            if candidate.code in sweep.chosen_codes:
                continue
            if sweep.mid_round_expired(deadline):
                expired = True
                break
            try:
                sweep.probe(candidate)
                score = scorer.score(selected + [candidate])
            except WorkerFailure:
                sweep.fault()
                continue
            sweep.evaluations += 1
            if score > best_score:
                best_score = score
                best = candidate
        if expired:
            # Mid-round expiry: abandon the partial round unless the
            # sweep has selected nothing yet (the anytime contract
            # promises at least one pattern when one scored).
            sweep.complete = False
            if (not selected and best is not None
                    and not (improve_only
                             and best_score <= sweep.current + 1e-12)):
                sweep.take(best, best_score)
            break
        if best is None:
            break
        if improve_only and best_score <= sweep.current + 1e-12:
            break
        sweep.take(best, best_score)


def _lazy_sweep(admissible: Sequence[Pattern], budget: PatternBudget,
                scorer: SetScorer, sweep: _Sweep, improve_only: bool,
                deadline: Deadline) -> None:
    """CELF lazy-greedy sweep over incremental marginal scores.

    A max-heap holds one entry per candidate, keyed ``(-bound,
    admissible_index)``.  A bound is the committed-state score with
    the candidate's *stale* components substituted in: its coverage
    gain from the last round it was evaluated (gains only shrink as
    commits raise the per-edge map — the submodular direction) and its
    similarity fold from that round (folds only grow as commits append
    non-negative terms).  Both substitutions push the combined score
    up through the same rounded operations the exact evaluation uses,
    so a bound is ``>=`` the exact score *bitwise*, and a fresh
    (evaluated this round) entry's key equals its exact score.  The
    first fresh entry popped is therefore the naive sweep's winner:
    every candidate with a higher exact score would have popped (and
    been evaluated) first, and ties resolve by admissible index —
    the first-max rule.  Non-submodular diversity/load weights (any
    negative weight) disable the shortcut: bounds become +inf and
    every pop re-evaluates, which is plain incremental greedy.
    """
    scorer.reset()
    selected = sweep.selected
    for pattern in selected:  # seeds, committed in order
        scorer.commit(pattern)
    sweep.current = scorer.committed_score() if selected else 0.0
    w = scorer.weights
    bounds_valid = (w.coverage >= 0 and w.diversity >= 0
                    and w.cognitive_load >= 0)

    stale_gain: Dict[int, float] = {}
    stale_sims: Dict[int, float] = {}
    sims_applied: Dict[int, int] = {}
    # Bound-seeding pass: one coverage fold per candidate (counted as
    # an evaluation — it is the dominant cost of one), no similarity
    # work.  Candidates that fault here enter the heap with an +inf
    # bound so they are re-tried the first time they top it.
    for i, candidate in enumerate(admissible):
        if candidate.code in sweep.chosen_codes:
            continue
        if sweep.mid_round_expired(deadline):
            # Same contract as the naive sweep's mid-round expiry: the
            # partial pass is abandoned, except that an empty sweep
            # still takes the best candidate scored so far.  With no
            # seeds the seeded bounds *are* the exact one-pattern
            # scores (bitwise), so this picks the naive winner.
            sweep.complete = False
            if not selected:
                best_i: Optional[int] = None
                best_score = float("-inf")
                for j, gain in stale_gain.items():
                    if gain == float("inf"):
                        continue
                    score = scorer._combined(
                        1, scorer._cov_sum + gain,
                        scorer._sim_sum + stale_sims[j],
                        scorer._load_sum + scorer._load(admissible[j]))
                    if score > best_score:
                        best_score = score
                        best_i = j
                if (best_i is not None
                        and not (improve_only
                                 and best_score
                                 <= sweep.current + 1e-12)):
                    sweep.take(admissible[best_i], best_score)
                    scorer.commit(admissible[best_i])
            return
        try:
            sweep.probe(candidate)
            stale_gain[i] = scorer.index.solo_gain(candidate)
            sweep.evaluations += 1
        except WorkerFailure:
            sweep.fault()
            stale_gain[i] = float("inf")
        stale_sims[i] = 0.0
        sims_applied[i] = 0

    committed_list = scorer._committed
    while len(selected) < budget.max_patterns:
        if sweep.trajectory and deadline.check("patterns.greedy_select"):
            sweep.complete = False
            break
        size = len(committed_list) + 1
        alive = [i for i in stale_gain
                 if admissible[i].code not in sweep.chosen_codes]
        if not alive:
            break
        # Refresh every bound against the new committed sums and
        # rebuild the heap for this round.  The similarity fold is
        # kept *exact* by appending the newly committed terms in
        # commit order (the same left fold ``_marginal_parts``
        # recomputes, bit for bit; pairs come from the LRU cache) —
        # the non-submodular diversity term therefore never loosens a
        # bound, and only the coverage gain is ever stale.
        heap: List[Tuple[float, int]] = []
        for i in alive:
            candidate = admissible[i]
            applied = sims_applied[i]
            while applied < len(committed_list):
                stale_sims[i] += scorer._similarity(
                    committed_list[applied], candidate)
                applied += 1
            sims_applied[i] = applied
            gain = stale_gain[i]
            if not bounds_valid or gain == float("inf"):
                bound = float("inf")
            else:
                bound = scorer._combined(
                    size,
                    scorer._cov_sum + gain,
                    scorer._sim_sum + stale_sims[i],
                    scorer._load_sum + scorer._load(candidate))
            heap.append((-bound, i))
        heapq.heapify(heap)
        sweep.heap_peak = max(sweep.heap_peak, len(heap))
        fresh: set = set()
        round_evaluations = 0
        winner: Optional[int] = None
        winner_score = float("-inf")
        best_fresh: Optional[int] = None
        best_fresh_score = float("-inf")
        expired = False
        while heap:
            negbound, i = heapq.heappop(heap)
            if i in fresh:
                winner = i
                winner_score = -negbound
                break
            if sweep.mid_round_expired(deadline):
                expired = True
                break
            candidate = admissible[i]
            try:
                sweep.probe(candidate)
                gain, sims, _load, exact = \
                    scorer._marginal_parts(candidate)
            except WorkerFailure:
                # dropped from this round; re-enters via ``alive``
                # next round with its previous bound intact
                sweep.fault()
                continue
            sweep.evaluations += 1
            round_evaluations += 1
            stale_gain[i] = gain
            stale_sims[i] = sims
            sims_applied[i] = len(committed_list)
            fresh.add(i)
            heapq.heappush(heap, (-exact, i))
            if exact > best_fresh_score:
                best_fresh_score = exact
                best_fresh = i
        remaining = len(alive) - round_evaluations
        if remaining > 0:
            sweep.saved += remaining
            metrics.inc("patterns.greedy.lazy_hits", remaining)
        if expired:
            sweep.complete = False
            if (not selected and best_fresh is not None
                    and not (improve_only
                             and best_fresh_score
                             <= sweep.current + 1e-12)):
                sweep.take(admissible[best_fresh], best_fresh_score)
                scorer.commit(admissible[best_fresh])
            break
        if winner is None:
            break
        if improve_only and winner_score <= sweep.current + 1e-12:
            break
        sweep.take(admissible[winner], winner_score)
        scorer.commit(admissible[winner])


def greedy_select(candidates: Sequence[Pattern], budget: PatternBudget,
                  scorer: SetScorer,
                  seed_patterns: Sequence[Pattern] = (),
                  improve_only: bool = False,
                  deadline: Deadline = UNBOUNDED,
                  workers: Optional[int] = None) -> SelectionResult:
    """Greedily pick up to ``budget.max_patterns`` candidates.

    Each round adds the candidate whose inclusion maximises the set
    score.  By default the budget is *filled* (a Pattern Panel shows
    its full complement even when the marginal candidate slightly
    lowers the combined score); with ``improve_only=True`` the sweep
    stops at the first round that cannot improve the score.

    ``seed_patterns`` are treated as already selected (they count
    against the budget) — MIDAS uses this to extend a maintained set.

    ``workers`` > 1 pre-indexes the admissible candidates through
    :meth:`repro.patterns.index.CoverageIndex.add_patterns`, fanning
    the covered-edge computations out over a pool in cache-merge mode
    before the (inherently sequential) sweep starts.  The sweep
    evaluates every admissible candidate's coverage anyway, so
    pre-indexing changes which process computes each entry but not a
    single result.

    The sweep is an anytime algorithm: it always completes at least
    one evaluation, polls ``deadline`` between rounds *and* every
    :data:`DEADLINE_POLL_EVERY` evaluations inside a round, and
    returns its best-so-far set (``complete=False``) once the budget
    is gone.  A candidate whose evaluation raises :class:`repro.
    errors.WorkerFailure` is dropped from that round and counted in
    ``faults`` instead of aborting the sweep.

    The implementation is the lazy-greedy (CELF) sweep unless
    ``REPRO_SELECT=naive`` selects the quadratic oracle; both return
    byte-identical results (see the module docstring).
    """
    admissible = [c for c in candidates if budget.admits(c.graph)]
    if workers is not None and resolve_workers(workers) > 1:
        scorer.index.add_patterns(admissible, workers=workers,
                                  deadline=deadline)
    mode = selection_mode()
    with span("patterns.greedy_select",
              candidates=len(admissible), mode=mode) as record:
        selected: List[Pattern] = list(seed_patterns)
        if len(selected) > budget.max_patterns:
            raise BudgetError("seed patterns already exceed the budget")
        sweep = _Sweep(selected)
        if mode == "naive":
            _naive_sweep(admissible, budget, scorer, sweep,
                         improve_only, deadline)
        else:
            _lazy_sweep(admissible, budget, scorer, sweep,
                        improve_only, deadline)
        record.add("rounds", len(sweep.trajectory))
        record.add("evaluations", sweep.evaluations)
        record.add("selected", len(sweep.selected))
        if mode == "lazy":
            record.add("heap_peak", sweep.heap_peak)
            record.add("evaluations_saved", sweep.saved)
        if sweep.faults:
            record.add("faults", sweep.faults)
        if not sweep.complete:
            record.add("partial", "true")
    metrics.inc("patterns.greedy.calls")
    metrics.inc("patterns.greedy.evaluations", sweep.evaluations)
    if sweep.saved:
        metrics.inc("patterns.greedy.evaluations_saved", sweep.saved)
    sim_stats = scorer.sim_cache_stats()
    metrics.set_gauge("patterns.scorer.sim_cache.size",
                      sim_stats["entries"])
    metrics.set_gauge("patterns.scorer.sim_cache.evictions",
                      sim_stats["evictions"])
    return SelectionResult(PatternSet(sweep.selected), sweep.current,
                           sweep.trajectory,
                           considered=len(admissible),
                           complete=sweep.complete, faults=sweep.faults,
                           evaluations=sweep.evaluations)


def exhaustive_select(candidates: Sequence[Pattern],
                      budget: PatternBudget,
                      scorer: SetScorer) -> SelectionResult:
    """Exact optimum by exhaustive search (small instances only).

    Used by the E10 approximation-quality experiment as the oracle
    against which greedy's ratio is measured.  Enumeration walks the
    scorer's incremental path: consecutive combinations share a
    committed prefix, so each combination costs one rollback walk
    plus one marginal evaluation instead of a full re-score.
    """
    from itertools import combinations

    metrics.inc("patterns.exhaustive.calls")
    admissible = [c for c in candidates if budget.admits(c.graph)]
    # dedup isomorphic candidates: they contribute identically
    unique: List[Pattern] = []
    seen: set[str] = set()
    for candidate in admissible:
        if candidate.code not in seen:
            seen.add(candidate.code)
            unique.append(candidate)
    if len(unique) > 18:
        raise BudgetError(
            f"exhaustive search over {len(unique)} candidates is "
            "intractable; this oracle is for small instances")
    best_patterns: Sequence[Pattern] = ()
    best_score = 0.0
    evaluations = 0
    scorer.reset()
    stack: List[Pattern] = []
    try:
        for k in range(1, budget.max_patterns + 1):
            for combo in combinations(unique, k):
                prefix = combo[:-1]
                shared = 0
                while (shared < len(stack) and shared < len(prefix)
                       and stack[shared] is prefix[shared]):
                    shared += 1
                while len(stack) > shared:
                    scorer.rollback()
                    stack.pop()
                for pattern in prefix[shared:]:
                    scorer.commit(pattern)
                    stack.append(pattern)
                score = scorer.marginal_score(combo[-1])
                evaluations += 1
                if score > best_score:
                    best_score = score
                    best_patterns = combo
    finally:
        scorer.reset()
    metrics.inc("patterns.exhaustive.evaluations", evaluations)
    return SelectionResult(PatternSet(best_patterns), best_score, [],
                           considered=len(unique),
                           evaluations=evaluations)
