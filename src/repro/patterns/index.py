"""Coverage indices for pattern selection and maintenance.

Selection loops evaluate set coverage thousands of times; doing a
subgraph-isomorphism search each time would dwarf everything else.
The :class:`CoverageIndex` precomputes, per (pattern, graph) pair,
the set of graph edges the pattern's embeddings cover, after which
set-coverage queries are cheap set unions.

MIDAS additionally uses the two pruning structures the paper
mentions: a pattern -> covered-graphs inverted index and a coverage
upper bound per pattern (its solo coverage, which upper-bounds any
marginal gain it can contribute).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, \
    Set, Tuple

from repro.graph.graph import Graph
from repro.matching.isomorphism import WILDCARD
from repro.obs import metrics
from repro.patterns.base import Pattern
from repro.perf.cache import MatchCache, cached_covered_edges, \
    get_match_cache
from repro.perf.executor import ItemFailure, failure_policy, pmap, \
    resolve_workers
from repro.resilience.deadline import Deadline

EdgeSet = FrozenSet[Tuple[int, int]]

#: Shared read-only default bucket for :meth:`CoverageIndex.marginal_gain`
#: lookups into graphs no committed pattern covers yet.
_EMPTY_BUCKET: Dict[Tuple[int, int], float] = {}


def _required_labels(graph: Graph) -> FrozenSet[str]:
    """Non-wildcard node labels a pattern needs its host to carry."""
    return frozenset(label for label in graph.compact().node_labels
                     if label != WILDCARD)


def _coverage_chunk_task(payload):
    """Index one chunk of patterns (module-level: runs in workers).

    ``payload`` is ``(graphs, [(code, pattern_graph), ...],
    max_embeddings, use_cache)``; returns one ``(code, [(graph_index,
    covered_edges), ...], pairs, pruned)`` tuple per pattern.  Workers
    use their process-global cache so accesses are recorded into the
    item's delta when the coordinating ``pmap`` runs in merge mode.
    """
    graphs, chunk, max_embeddings, use_cache = payload
    cache = get_match_cache() if use_cache else None
    graph_labels = [graph.compact().label_set() for graph in graphs]
    out = []
    for code, pattern_graph in chunk:
        required = _required_labels(pattern_graph)
        entry = []
        pairs = pruned = 0
        for idx, graph in enumerate(graphs):
            if pattern_graph.order() > graph.order():
                continue
            if not required <= graph_labels[idx]:
                pruned += 1
                continue
            covered = cached_covered_edges(
                pattern_graph, graph, pattern_code=code,
                max_embeddings=max_embeddings, cache=cache)
            pairs += 1
            if covered:
                entry.append((idx, covered))
        out.append((code, entry, pairs, pruned))
    return out


class CoverageIndex:
    """Covered-edge sets of patterns over a (sample of a) repository.

    Parameters
    ----------
    graphs:
        The evaluation graphs (typically a repository sample or the
        cluster representatives).
    max_embeddings:
        Cap on embeddings enumerated per (pattern, graph) pair.
    cache:
        A :class:`repro.perf.MatchCache` memoizing covered-edge sets
        across index instances (MIDAS builds a fresh index per batch;
        TATTOO per scan) — keyed by canonical code + graph content,
        so the answers are identical with or without it.  Defaults to
        the process-global cache; pass ``use_cache=False`` to opt out.
    """

    def __init__(self, graphs: Sequence[Graph],
                 max_embeddings: int = 50,
                 size_utility: bool = False,
                 cache: Optional[MatchCache] = None,
                 use_cache: bool = True) -> None:
        self.graphs: List[Graph] = list(graphs)
        self.max_embeddings = max_embeddings
        self.size_utility = size_utility
        self.total_edges = sum(g.size() for g in self.graphs)
        self._cache: Optional[MatchCache] = None
        if use_cache:
            self._cache = cache if cache is not None else get_match_cache()
        # interned label table per graph, straight off the compact
        # view — the per-pair pruning test is then a subset check
        # instead of a per-call label-set rebuild
        self._graph_labels: List[FrozenSet[str]] = \
            [graph.compact().label_set() for graph in self.graphs]
        # pattern code -> {graph index -> covered edge set}
        self._cover: Dict[str, Dict[int, EdgeSet]] = {}
        self._utility: Dict[str, float] = {}

    def _pattern_utility(self, pattern: Pattern) -> float:
        """Formulation utility of a pattern, in (0, 1].

        With ``size_utility`` enabled, an edge covered by a larger
        pattern counts more (``m / (m + 2)``): reconstructing that
        region from the pattern saves more user gestures.  This is
        the size preference in CATAPULT's pattern score.  Disabled,
        every pattern weighs 1 (plain edge coverage).
        """
        if not self.size_utility:
            return 1.0
        if pattern.code not in self._utility:
            m = pattern.size()
            self._utility[pattern.code] = m / (m + 2.0)
        return self._utility[pattern.code]

    # -- building -------------------------------------------------------
    def add_pattern(self, pattern: Pattern) -> None:
        """Index one pattern (idempotent).

        Pairs are pruned through the compact label tables before any
        matching: a host graph whose interned label table lacks a
        non-wildcard label of the pattern provably has an empty
        covered-edge set, so its VF2 search (and cache access) is
        skipped outright.  Skipped pairs are counted in the
        ``patterns.coverage.pairs_pruned`` metric — the VF2-call
        delta the obs snapshot reports.
        """
        if pattern.code in self._cover:
            return
        required = _required_labels(pattern.graph)
        entry: Dict[int, EdgeSet] = {}
        pairs = pruned = 0
        for idx, graph in enumerate(self.graphs):
            if pattern.order() > graph.order():
                continue
            if not required <= self._graph_labels[idx]:
                pruned += 1
                continue
            covered = cached_covered_edges(
                pattern.graph, graph, pattern_code=pattern.code,
                max_embeddings=self.max_embeddings, cache=self._cache)
            pairs += 1
            if covered:
                entry[idx] = covered
        self._cover[pattern.code] = entry
        metrics.inc("patterns.coverage.patterns_indexed")
        metrics.inc("patterns.coverage.pairs", pairs)
        metrics.inc("patterns.coverage.pairs_pruned", pruned)

    def add_patterns(self, patterns: Iterable[Pattern],
                     workers: Optional[int] = None,
                     deadline: Optional[Deadline] = None) -> None:
        """Index many patterns, optionally fanning out over a pool.

        With ``workers`` > 1 the not-yet-indexed patterns are chunked
        and dispatched through :func:`repro.perf.pmap` in cache-merge
        mode against this index's cache: each worker records its
        covered-edge computations as a cache delta, the coordinator
        replays them in input order, and the resulting ``_cover``
        entries (and cache counters) are identical to the serial
        loop's at every worker count.  Selection loops call this as a
        pre-indexing pass so their on-demand :meth:`cover_of` lookups
        all hit.

        Under an expired ``deadline`` remaining patterns are left
        unindexed (they lazily index on first use); a failed chunk
        falls back to the serial path for its patterns.
        """
        pending = [p for p in patterns if p.code not in self._cover]
        if not pending:
            return
        worker_count = resolve_workers(workers)
        if worker_count <= 1 or len(pending) < 2:
            for pattern in pending:
                self.add_pattern(pattern)
            return
        chunk_size = max(1, -(-len(pending) // (worker_count * 2)))
        chunks = [pending[at:at + chunk_size]
                  for at in range(0, len(pending), chunk_size)]
        deadline = deadline or Deadline(None)
        payloads = []
        for chunk in chunks:
            payloads.append((self.graphs,
                             [(p.code, p.graph) for p in chunk],
                             self.max_embeddings,
                             self._cache is not None))
        policy = failure_policy(0, deadline.seconds)
        wave = (len(payloads) if deadline.seconds is None
                else max(1, worker_count))
        for start in range(0, len(payloads), wave):
            if start and deadline.check("patterns.coverage"):
                break
            batch = pmap(_coverage_chunk_task,
                         payloads[start:start + wave],
                         workers=worker_count,
                         on_item_failure=policy,
                         site="patterns.coverage",
                         cache_merge=self._cache)
            for offset, outcome in enumerate(batch):
                if isinstance(outcome, ItemFailure):
                    # chunk lost to a fault: recompute serially
                    for pattern in chunks[start + offset]:
                        self.add_pattern(pattern)
                    continue
                for code, entry, pairs, pruned in outcome:
                    self._cover[code] = dict(entry)
                    metrics.inc("patterns.coverage.patterns_indexed")
                    metrics.inc("patterns.coverage.pairs", pairs)
                    metrics.inc("patterns.coverage.pairs_pruned",
                                pruned)

    def is_indexed(self, pattern: Pattern) -> bool:
        return pattern.code in self._cover

    def seed_cover(self, pattern: Pattern,
                   cover: Dict[int, EdgeSet]) -> None:
        """Install a precomputed covered-edge map for ``pattern``.

        Scale benchmarks and tests use this to exercise selection at
        repository sizes where running the matcher for every
        (pattern, graph) pair is beside the point; a seeded entry is
        indistinguishable from an indexed one (idempotent, like
        :meth:`add_pattern`: an existing entry wins).
        """
        if pattern.code in self._cover:
            return
        self._cover[pattern.code] = {idx: frozenset(edges)
                                     for idx, edges in cover.items()}
        metrics.inc("patterns.coverage.patterns_indexed")

    # -- queries ----------------------------------------------------------
    def cover_of(self, pattern: Pattern) -> Dict[int, EdgeSet]:
        """Per-graph covered edges of one pattern (indexes on demand)."""
        if pattern.code not in self._cover:
            self.add_pattern(pattern)
        return self._cover[pattern.code]

    def covered_graphs(self, pattern: Pattern) -> Set[int]:
        """Inverted index: which graphs the pattern covers (>= 1 edge)."""
        return set(self.cover_of(pattern))

    def solo_coverage(self, pattern: Pattern) -> float:
        """Edge coverage the pattern achieves alone — an upper bound on
        the marginal coverage it can add to any set (submodularity)."""
        if self.total_edges == 0:
            return 0.0
        utility = self._pattern_utility(pattern)
        covered = sum(len(edges) for edges in self.cover_of(pattern).values())
        return utility * covered / self.total_edges

    def _edge_values(self, patterns: Sequence[Pattern]
                     ) -> Dict[int, Dict[Tuple[int, int], float]]:
        """Per covered edge, the best utility among covering patterns."""
        values: Dict[int, Dict[Tuple[int, int], float]] = {}
        for pattern in patterns:
            utility = self._pattern_utility(pattern)
            for idx, edges in self.cover_of(pattern).items():
                bucket = values.setdefault(idx, {})
                for edge in edges:
                    if utility > bucket.get(edge, 0.0):
                        bucket[edge] = utility
        return values

    def set_coverage(self, patterns: Sequence[Pattern]) -> float:
        """(Utility-weighted) edge coverage of a pattern set.

        With ``size_utility`` off this is exactly
        ``|covered edges| / |all edges|``; with it on, each covered
        edge contributes the best utility of the patterns covering it
        (a weighted max-coverage objective — still monotone and
        submodular, so the greedy guarantee is unaffected).
        """
        if self.total_edges == 0 or not patterns:
            return 0.0
        values = self._edge_values(patterns)
        covered = sum(sum(bucket.values()) for bucket in values.values())
        return covered / self.total_edges

    def marginal_coverage(self, pattern: Pattern,
                          selected: Sequence[Pattern]) -> float:
        """Coverage gain of adding ``pattern`` to ``selected``."""
        if self.total_edges == 0:
            return 0.0
        base = self._edge_values(selected)
        utility = self._pattern_utility(pattern)
        gain = 0.0
        for idx, edges in self.cover_of(pattern).items():
            bucket = base.get(idx, {})
            for edge in edges:
                gain += max(0.0, utility - bucket.get(edge, 0.0))
        return gain / self.total_edges

    # -- incremental folds (SetScorer's commit path) ---------------------
    #
    # The three methods below share one floating-point contract: a
    # pattern's *raw gain* over a per-edge best-utility map is always
    # folded from 0.0 over the same edges in the same order, with the
    # same ``max(0.0, utility - best)`` term per edge.  ``SetScorer``
    # builds both its oracle ``score()`` and its incremental
    # ``marginal_score()``/``commit()`` out of these folds, which is
    # what makes the lazy sweep byte-identical to the naive one (see
    # DESIGN.md, "Selection").

    def solo_gain(self, pattern: Pattern) -> float:
        """Raw utility gain of ``pattern`` over an empty set.

        Bitwise equal to ``marginal_gain(pattern, {})`` and, by the
        per-edge monotonicity of the fold, an upper bound on the gain
        against *any* committed state — the CELF heap's initial stale
        bound (the fp-exact form of :meth:`solo_coverage`).
        """
        return self.marginal_gain(pattern, {})

    def marginal_gain(self, pattern: Pattern,
                      edge_best: Dict[int, Dict[Tuple[int, int], float]]
                      ) -> float:
        """Raw (unnormalised) utility gain of ``pattern`` over a
        per-edge best-utility map, without modifying the map."""
        utility = self._pattern_utility(pattern)
        gain = 0.0
        for idx, edges in self.cover_of(pattern).items():
            bucket = edge_best.get(idx, _EMPTY_BUCKET)
            for edge in edges:
                best = bucket.get(edge, 0.0)
                gain += max(0.0, utility - best)
        return gain

    def apply_gain(self, pattern: Pattern,
                   edge_best: Dict[int, Dict[Tuple[int, int], float]],
                   undo: Optional[List[Tuple[int, Tuple[int, int],
                                             Optional[float]]]] = None
                   ) -> float:
        """Fold ``pattern`` into ``edge_best`` in place.

        Returns the same gain as :meth:`marginal_gain` (bit for bit:
        identical fold, identical term order) while raising the map's
        per-edge best utilities.  ``undo``, when given, records every
        overwrite as ``(graph_idx, edge, previous_or_None)`` so
        :meth:`SetScorer.rollback` can restore the map exactly.
        """
        utility = self._pattern_utility(pattern)
        gain = 0.0
        for idx, edges in self.cover_of(pattern).items():
            bucket = edge_best.get(idx)
            if bucket is None:
                bucket = edge_best[idx] = {}
            for edge in edges:
                best = bucket.get(edge, 0.0)
                gain += max(0.0, utility - best)
                if utility > best:
                    if undo is not None:
                        undo.append((idx, edge, bucket.get(edge)))
                    bucket[edge] = utility
        return gain

    def set_graph_coverage(self, patterns: Sequence[Pattern]) -> float:
        """Fraction of indexed graphs covered by >= 1 pattern."""
        if not self.graphs:
            return 0.0
        covered: Set[int] = set()
        for pattern in patterns:
            covered |= self.covered_graphs(pattern)
        return len(covered) / len(self.graphs)

    def cache_stats(self) -> Optional[Dict[str, float]]:
        """Stats of the backing match cache, or None when uncached.

        Deprecated entry point: when the index is backed by the
        process-global cache these counters also appear under
        ``"matching"`` in :func:`repro.obs.snapshot`, which is the
        one-stop view new code should prefer.
        """
        if self._cache is None:
            return None
        return self._cache.stats()

    def __len__(self) -> int:
        return len(self._cover)
