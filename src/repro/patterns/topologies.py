"""Topology classification of patterns.

TATTOO sidesteps the lack of public graph query logs by classifying
candidate patterns into the topology classes that Bonifati et al.'s
analysis of large SPARQL query logs found in real queries: chains,
stars, trees, cycles/triangles, petals, flowers, and denser
"flower-set"-like shapes.  This module implements the classifier and
the class taxonomy shared by the candidate extractors and the
workload generator.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Set

from repro.graph.graph import Graph
from repro.graph.operations import (
    is_clique,
    is_connected,
    is_cycle_graph,
    is_path_graph,
    is_star,
    is_tree,
)


class TopologyClass(str, Enum):
    """Topology classes of real-world graph queries (Bonifati et al.)."""

    SINGLETON = "singleton"   # one node, no edges
    CHAIN = "chain"           # simple path
    STAR = "star"             # one hub, leaves
    TREE = "tree"             # other acyclic shapes
    TRIANGLE = "triangle"     # C3 = K3
    CYCLE = "cycle"           # Cn, n >= 4
    PETAL = "petal"           # >= 2 disjoint paths between two anchors
    FLOWER = "flower"         # cycles sharing exactly one hub node
    CLIQUE = "clique"         # Kn, n >= 4
    GENERAL = "general"       # everything else (cyclic, non-special)

    def is_acyclic(self) -> bool:
        return self in (TopologyClass.SINGLETON, TopologyClass.CHAIN,
                        TopologyClass.STAR, TopologyClass.TREE)

    def is_triangle_like(self) -> bool:
        """Classes whose members necessarily contain triangles."""
        return self in (TopologyClass.TRIANGLE, TopologyClass.CLIQUE)


def _is_petal(graph: Graph) -> bool:
    """Petal: two anchor nodes joined by >= 2 internally-disjoint paths
    (circuit rank >= 1), every non-anchor node of degree 2."""
    if graph.order() < 3 or not is_connected(graph):
        return False
    rank = graph.size() - graph.order() + 1
    if rank < 1:
        return False
    anchors = [v for v in graph.nodes() if graph.degree(v) != 2]
    if len(anchors) != 2:
        return False
    a, b = anchors
    if graph.degree(a) != graph.degree(b) or graph.degree(a) < 3:
        return False
    # removing the anchors must leave only paths (all degree <= 2 holds
    # by construction); additionally every remaining component must be
    # attached to both anchors, which the degree conditions imply when
    # rank == degree(anchor) - 1.
    return rank == graph.degree(a) - 1


def _is_flower(graph: Graph) -> bool:
    """Flower: >= 2 cycles sharing exactly one hub node."""
    if graph.order() < 5 or not is_connected(graph):
        return False
    hubs = [v for v in graph.nodes() if graph.degree(v) != 2]
    if len(hubs) != 1:
        return False
    hub = hubs[0]
    degree = graph.degree(hub)
    if degree < 4 or degree % 2 != 0:
        return False
    # circuit rank must equal the number of petal cycles
    rank = graph.size() - graph.order() + 1
    return rank == degree // 2


def classify_topology(graph: Graph) -> TopologyClass:
    """Classify a connected pattern into its topology class.

    Tie-breaking precedence (most specific first): singleton, chain,
    star, tree; triangle, clique, cycle, petal, flower; general.
    P3 counts as a chain even though it is also a 2-leaf star.
    """
    if graph.order() == 1:
        return TopologyClass.SINGLETON
    if is_tree(graph):
        if is_path_graph(graph):
            return TopologyClass.CHAIN
        if is_star(graph):
            return TopologyClass.STAR
        return TopologyClass.TREE
    if graph.order() == 3 and graph.size() == 3:
        return TopologyClass.TRIANGLE
    if is_clique(graph):
        return TopologyClass.CLIQUE
    if is_cycle_graph(graph):
        return TopologyClass.CYCLE
    if _is_petal(graph):
        return TopologyClass.PETAL
    if _is_flower(graph):
        return TopologyClass.FLOWER
    return TopologyClass.GENERAL


def topology_histogram(graphs: List[Graph]) -> Dict[TopologyClass, int]:
    """Count topology classes over a list of (connected) graphs."""
    histogram: Dict[TopologyClass, int] = {}
    for graph in graphs:
        cls = classify_topology(graph)
        histogram[cls] = histogram.get(cls, 0) + 1
    return histogram


#: Topology mix of real query logs (approximate shares distilled from
#: Bonifati et al.'s SPARQL log analysis: acyclic shapes dominate,
#: cycles/petals/flowers form a small but systematic tail).
QUERY_LOG_TOPOLOGY_MIX: Dict[TopologyClass, float] = {
    TopologyClass.CHAIN: 0.38,
    TopologyClass.STAR: 0.28,
    TopologyClass.TREE: 0.16,
    TopologyClass.TRIANGLE: 0.06,
    TopologyClass.CYCLE: 0.05,
    TopologyClass.PETAL: 0.04,
    TopologyClass.FLOWER: 0.02,
    TopologyClass.CLIQUE: 0.01,
}


def triangle_like_classes() -> Set[TopologyClass]:
    """Classes extracted from the truss-infested region in TATTOO."""
    return {TopologyClass.TRIANGLE, TopologyClass.CLIQUE,
            TopologyClass.FLOWER, TopologyClass.PETAL}


def non_triangle_classes() -> Set[TopologyClass]:
    """Classes extracted from the truss-oblivious region in TATTOO."""
    return {TopologyClass.CHAIN, TopologyClass.STAR, TopologyClass.TREE,
            TopologyClass.CYCLE}
