"""CATAPULT: data-driven canned-pattern selection for graph databases."""

from repro.catapult.pipeline import (
    CatapultConfig,
    CatapultResult,
    cluster_repository,
    default_cluster_count,
    generate_all_candidates,
    select_canned_patterns,
    summarize_clusters,
)
from repro.catapult.random_walk import generate_candidates, walk_candidate

__all__ = [
    "CatapultConfig",
    "CatapultResult",
    "cluster_repository",
    "default_cluster_count",
    "generate_all_candidates",
    "select_canned_patterns",
    "summarize_clusters",
    "generate_candidates",
    "walk_candidate",
]
