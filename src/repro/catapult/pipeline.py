"""The CATAPULT pipeline (Huang et al., SIGMOD 2019).

Data-driven canned-pattern selection for a repository of small- or
medium-sized graphs, in three steps:

1. **Cluster** the repository on frequent-subtree feature vectors.
2. **Summarise** each cluster into a cluster summary graph (CSG) by
   iterative graph closure.
3. **Select** canned patterns greedily from weighted-random-walk
   candidates, maximising the coverage/diversity/cognitive-load
   pattern-set score under the display budget.
"""

from __future__ import annotations

import math
import random
import time
import warnings
from typing import Dict, List, Optional, Sequence

from repro.clustering.features import (
    DEFAULT_TREE_EDGES,
    mine_frequent_trees,
    repository_feature_matrix,
)
from repro.clustering.kmedoids import ClusteringResult, kmedoids
from repro.clustering.similarity import distance_matrix_from_vectors
from repro.errors import PipelineError
from repro.graph.graph import Graph
from repro.graph.operations import induced_subgraph, sample_connected_node_set
from repro.obs import capture, span
from repro.patterns.base import Pattern, PatternBudget, PatternSet
from repro.patterns.index import CoverageIndex
from repro.patterns.scoring import DEFAULT_WEIGHTS, ScoreWeights
from repro.patterns.selection import SelectionResult, SetScorer, greedy_select
from repro.perf.cache import cached_is_subgraph, get_match_cache
from repro.perf.executor import ItemFailure, derive_seed, \
    failure_policy, pmap, resolve_workers
from repro.resilience.deadline import CompletionReport, Deadline
from repro.summary.closure import SummaryGraph, build_summary
from repro.catapult.random_walk import generate_candidates


class CatapultConfig:
    """Tunables of the CATAPULT pipeline.

    ``workers`` fans the per-cluster candidate walks and the distance
    matrix out over :func:`repro.perf.pmap` processes (``None`` reads
    ``REPRO_WORKERS``; 1 = serial).  Each cluster draws its walks from
    a seed split off ``seed`` with :func:`repro.perf.derive_seed`, so
    the selected patterns are identical at every worker count.
    ``use_cache`` toggles the shared VF2 match cache; ``trace``
    captures a :mod:`repro.obs` trace for this run even when the
    ``REPRO_TRACE`` environment switch is unset.  ``deadline_s``
    bounds the run's wall clock (stages stop early and the result
    degrades instead of raising); ``max_retries`` is the per-item
    retry budget failing pmap work items get before being skipped.
    """

    __slots__ = ("clusters", "min_tree_support", "max_tree_edges",
                 "walks_per_cluster", "member_samples", "seed", "weights",
                 "validate_candidates", "coverage_sample",
                 "max_embeddings", "workers", "use_cache", "trace",
                 "deadline_s", "max_retries")

    def __init__(self, clusters: Optional[int] = None,
                 min_tree_support: int = 2,
                 max_tree_edges: int = DEFAULT_TREE_EDGES,
                 walks_per_cluster: int = 60,
                 member_samples: int = 20, seed: int = 0,
                 weights: ScoreWeights = DEFAULT_WEIGHTS,
                 validate_candidates: bool = True,
                 coverage_sample: int = 60,
                 max_embeddings: int = 30,
                 workers: Optional[int] = None,
                 use_cache: bool = True,
                 trace: bool = False,
                 deadline_s: Optional[float] = None,
                 max_retries: int = 0) -> None:
        self.clusters = clusters
        self.min_tree_support = min_tree_support
        self.max_tree_edges = max_tree_edges
        self.walks_per_cluster = walks_per_cluster
        self.member_samples = member_samples
        self.seed = seed
        self.weights = weights
        self.validate_candidates = validate_candidates
        self.coverage_sample = coverage_sample
        self.max_embeddings = max_embeddings
        self.workers = workers
        self.use_cache = use_cache
        self.trace = trace
        self.deadline_s = deadline_s
        self.max_retries = max_retries

    @classmethod
    def from_pipeline(cls, pipeline) -> "CatapultConfig":
        """Translate a :class:`repro.core.pipeline.PipelineConfig`:
        shared fields map 1:1 and CATAPULT-specific knobs come from
        ``pipeline.options`` (unknown option names raise)."""
        kwargs = dict(pipeline.options)
        unknown = sorted(set(kwargs) - set(cls.__slots__))
        if unknown:
            raise PipelineError(
                "unknown CATAPULT option(s): " + ", ".join(unknown))
        for name in ("seed", "workers", "use_cache", "weights",
                     "max_embeddings", "trace", "deadline_s",
                     "max_retries"):
            kwargs.setdefault(name, getattr(pipeline, name))
        return cls(**kwargs)


class CatapultResult:
    """Everything the pipeline produced, including stage timings.

    Satisfies :class:`repro.core.pipeline.PipelineResult`:
    ``.patterns``, ``.stats``, and ``.trace`` (the run's span record,
    ``None`` unless tracing was on).
    """

    __slots__ = ("patterns", "clustering", "summaries", "candidates",
                 "selection", "timings", "trace", "completion")

    def __init__(self, patterns: PatternSet, clustering: ClusteringResult,
                 summaries: List[SummaryGraph],
                 candidates: List[Pattern],
                 selection: SelectionResult,
                 timings: Dict[str, float],
                 trace: Optional[Dict[str, object]] = None,
                 completion: Optional[CompletionReport] = None) -> None:
        self.patterns = patterns
        self.clustering = clustering
        self.summaries = summaries
        self.candidates = candidates
        self.selection = selection
        self.timings = timings
        self.trace = trace
        self.completion = completion or CompletionReport()

    @property
    def degraded(self) -> bool:
        """True when any stage stopped short of its full work."""
        return self.completion.degraded

    @property
    def stats(self) -> Dict[str, object]:
        """Flat run statistics in the shared PipelineResult shape."""
        return {
            "pipeline": "catapult",
            "patterns": len(self.patterns),
            "clusters": len(self.summaries),
            "candidates": len(self.candidates),
            "considered": self.selection.considered,
            "score": self.selection.score,
            "timings": dict(self.timings),
            "degraded": self.degraded,
            "completion": self.completion.as_dict(),
        }

    def __repr__(self) -> str:
        state = " degraded" if self.degraded else ""
        return (f"<CatapultResult k={len(self.patterns)} "
                f"clusters={len(self.summaries)} "
                f"candidates={len(self.candidates)}{state}>")


def default_cluster_count(repository_size: int) -> int:
    """Heuristic k = sqrt(n/2), clamped to [1, n]."""
    if repository_size <= 1:
        return 1
    return max(1, min(repository_size,
                      round(math.sqrt(repository_size / 2))))


def cluster_repository(repository: Sequence[Graph],
                       config: CatapultConfig,
                       deadline: Optional[Deadline] = None,
                       report: Optional[CompletionReport] = None
                       ) -> ClusteringResult:
    """Step 1: frequent-subtree features + k-medoids.

    Under an already-expired deadline the stage degrades to the same
    trivial single-cluster result a featureless repository gets —
    the cheapest clustering that still lets the later stages produce
    patterns — and records itself incomplete.
    """
    deadline = deadline or Deadline(None)
    report = report if report is not None else CompletionReport()
    with span("catapult.cluster", graphs=len(repository)) as stage:
        if deadline.check("catapult.cluster"):
            stage.add("clusters", 1)
            report.record("cluster", 0, 1,
                          note="deadline expired; single-cluster "
                               "fallback")
            return ClusteringResult(labels=[0] * len(repository),
                                    medoids=[0], cost=0.0)
        vocabulary = mine_frequent_trees(
            repository, min_support=config.min_tree_support,
            max_edges=config.max_tree_edges)
        k = config.clusters or default_cluster_count(len(repository))
        stage.add("vocabulary", len(vocabulary))
        if not vocabulary:
            # degenerate repositories (no shared subtree): one cluster
            stage.add("clusters", 1)
            report.record("cluster", 1, 1)
            return ClusteringResult(labels=[0] * len(repository),
                                    medoids=[0], cost=0.0)
        matrix = repository_feature_matrix(repository, vocabulary,
                                           config.max_tree_edges)
        distances = distance_matrix_from_vectors(
            matrix, metric="euclidean", workers=config.workers)
        stage.add("clusters", k)
        report.record("cluster", 1, 1)
        return kmedoids(distances, k, seed=config.seed)


def summarize_clusters(repository: Sequence[Graph],
                       clustering: ClusteringResult,
                       deadline: Optional[Deadline] = None,
                       report: Optional[CompletionReport] = None
                       ) -> List[SummaryGraph]:
    """Step 2: one CSG per non-empty cluster.

    Anytime: always summarises at least one cluster, then polls the
    deadline between clusters; clusters cut off here simply produce
    no candidates later.
    """
    deadline = deadline or Deadline(None)
    report = report if report is not None else CompletionReport()
    with span("catapult.summarize") as stage:
        populated = [m for m in clustering.clusters() if m]
        summaries: List[SummaryGraph] = []
        for members in populated:
            if summaries and deadline.check("catapult.summarize"):
                break
            summaries.append(
                build_summary([repository[i] for i in members]))
        stage.add("summaries", len(summaries))
        report.record("summarize", len(summaries), len(populated))
        return summaries


def _make_validator(members: Sequence[Graph], sample: int = 8,
                    use_cache: bool = True):
    """Candidate validator: occurs in at least one cluster member.

    Validation runs through :func:`repro.perf.cached_is_subgraph`
    (same ``"matching.is_subgraph"`` chaos site as the raw matcher),
    so repeated probes of the same candidate against the same member
    hit the match cache — and, inside a pool worker, land in the
    item's :class:`repro.perf.CacheDelta` for the coordinator to
    merge.
    """
    probe = list(members[:sample])

    def validator(candidate: Graph) -> bool:
        cache = get_match_cache() if use_cache else None
        return any(cached_is_subgraph(candidate, member, cache=cache)
                   for member in probe)

    return validator


def _cluster_candidates_task(task) -> List[Pattern]:
    """One cluster's candidates (module-level: runs in pool workers).

    ``task`` is ``(cluster_index, member_graphs, summary, budget,
    walks, member_samples, validate, use_cache, seed)``; the
    per-cluster RNG is built from the split seed, so the output
    depends only on the task content, never on which worker ran it or
    in what order.
    """
    (cluster_index, member_graphs, summary, budget, walks,
     member_samples, validate, use_cache, seed) = task
    with span("catapult.cluster_walks", cluster=cluster_index) as walk:
        rng = random.Random(seed)
        validator = (_make_validator(member_graphs, use_cache=use_cache)
                     if validate else None)
        out: List[Pattern] = []
        for pattern in generate_candidates(
                summary, budget, walks, rng,
                source=f"catapult:cluster{cluster_index}",
                validator=validator):
            pattern.code  # canonical coding happens in the worker
            out.append(pattern)
        for _ in range(member_samples):
            member = rng.choice(member_graphs)
            if member.order() < budget.min_size:
                continue
            size = rng.randint(budget.min_size,
                               min(budget.max_size, member.order()))
            node_set = sample_connected_node_set(member, size, rng,
                                                 attempts=5)
            if node_set is None:
                continue
            sampled = induced_subgraph(member, node_set).normalized()
            pattern = Pattern(sampled,
                              source=f"catapult:member{cluster_index}")
            pattern.code
            out.append(pattern)
        walk.add("patterns", len(out))
        return out


def generate_all_candidates(repository: Sequence[Graph],
                            clustering: ClusteringResult,
                            summaries: List[SummaryGraph],
                            budget: PatternBudget,
                            config: CatapultConfig,
                            deadline: Optional[Deadline] = None,
                            report: Optional[CompletionReport] = None
                            ) -> List[Pattern]:
    """Step 3a: candidate patterns from every cluster, deduplicated.

    Two complementary sources per cluster: support-weighted random
    walks over the CSG (shared substructure, mixed labels) and
    connected subgraphs sampled from cluster members directly
    (exact labels — this is how ring motifs reliably surface).
    Clusters are independent work items; they run under
    :func:`repro.perf.pmap` with one derived seed each and merge in
    cluster order, so the result is worker-count invariant.

    Resilience: a failing cluster task climbs pmap's retry ladder and
    is then skipped (recorded here, never raised).  Under a deadline
    clusters are dispatched in worker-sized waves — the first wave
    always runs, later waves only while budget remains — so the stage
    degrades to fewer clusters' candidates rather than none.
    """
    deadline = deadline or Deadline(None)
    report = report if report is not None else CompletionReport()
    with span("catapult.candidates") as stage:
        clusters = [c for c in clustering.clusters() if c]
        stage.add("clusters", len(clusters))
        tasks = []
        for cluster_index, (members, summary) in enumerate(
                zip(clusters, summaries)):
            member_graphs = [repository[i] for i in members]
            tasks.append((cluster_index, member_graphs, summary, budget,
                          config.walks_per_cluster, config.member_samples,
                          config.validate_candidates, config.use_cache,
                          derive_seed(config.seed, cluster_index)))
        policy = failure_policy(config.max_retries, config.deadline_s)
        cache_merge = get_match_cache() if config.use_cache else None
        wave = (len(tasks) if deadline.seconds is None
                else max(1, resolve_workers(config.workers)))
        candidates: List[Pattern] = []
        seen: set[str] = set()
        done = failed = 0
        for start in range(0, len(tasks), wave):
            if start and deadline.check("catapult.candidates"):
                break
            for batch in pmap(_cluster_candidates_task,
                              tasks[start:start + wave],
                              workers=config.workers,
                              max_retries=config.max_retries,
                              on_item_failure=policy,
                              retry_seed=config.seed,
                              site="catapult.candidates",
                              cache_merge=cache_merge):
                if isinstance(batch, ItemFailure):
                    failed += 1
                    continue
                done += 1
                for pattern in batch:
                    if pattern.code not in seen:
                        seen.add(pattern.code)
                        candidates.append(pattern)
        stage.add("candidates", len(candidates))
        if failed:
            stage.add("failed_clusters", failed)
        report.record("candidates", done, len(tasks),
                      note=f"{failed} cluster task(s) skipped"
                      if failed else "")
        return candidates


def _run_catapult(repository: Sequence[Graph],
                  budget: PatternBudget,
                  config: CatapultConfig) -> CatapultResult:
    """The actual pipeline, shared by the new-style entry points and
    the deprecated keyword signature."""
    if not repository:
        raise PipelineError("CATAPULT needs a non-empty repository")
    timings: Dict[str, float] = {}
    deadline = Deadline.start(config.deadline_s)
    report = CompletionReport()

    with capture("catapult.pipeline", force=config.trace,
                 graphs=len(repository)) as run:
        start = time.perf_counter()
        clustering = cluster_repository(repository, config,
                                        deadline, report)
        timings["cluster"] = time.perf_counter() - start

        start = time.perf_counter()
        summaries = summarize_clusters(repository, clustering,
                                       deadline, report)
        timings["summarize"] = time.perf_counter() - start

        start = time.perf_counter()
        candidates = generate_all_candidates(repository, clustering,
                                             summaries, budget, config,
                                             deadline, report)
        timings["candidates"] = time.perf_counter() - start

        start = time.perf_counter()
        with span("catapult.select", candidates=len(candidates)) as stage:
            rng = random.Random(config.seed)
            sample = list(repository)
            if len(sample) > config.coverage_sample:
                sample = rng.sample(sample, config.coverage_sample)
            index = CoverageIndex(sample,
                                  max_embeddings=config.max_embeddings,
                                  size_utility=True,
                                  use_cache=config.use_cache)
            scorer = SetScorer(index, weights=config.weights)
            selection = greedy_select(candidates, budget, scorer,
                                      deadline=deadline,
                                      workers=config.workers)
            stage.add("evaluations", selection.evaluations)
            report.record("select", len(selection.patterns),
                          budget.max_patterns,
                          complete=selection.complete
                          and not selection.faults,
                          note=f"{selection.faults} evaluation "
                          "fault(s)" if selection.faults else "")
        timings["select"] = time.perf_counter() - start
        if report.degraded:
            run.add("degraded", "true")

    return CatapultResult(selection.patterns, clustering, summaries,
                          candidates, selection, timings,
                          trace=run.record, completion=report)


def select_canned_patterns(repository: Sequence[Graph],
                           budget=None,
                           config: Optional[CatapultConfig] = None
                           ) -> CatapultResult:
    """Run the full CATAPULT pipeline on a repository.

    New-style calls pass a single :class:`repro.core.pipeline.
    PipelineConfig` in place of ``budget`` (or use :func:`repro.core.
    pipeline.run_catapult`).  The legacy ``(repository, budget,
    CatapultConfig)`` signature still works but emits a
    ``DeprecationWarning``.
    """
    from repro.core.pipeline import PipelineConfig

    if isinstance(budget, PipelineConfig):
        if config is not None:
            raise PipelineError(
                "pass CATAPULT options inside PipelineConfig.options, "
                "not as a separate CatapultConfig")
        return _run_catapult(repository, budget.require_budget(),
                             CatapultConfig.from_pipeline(budget))
    warnings.warn(
        "select_canned_patterns(repository, budget, CatapultConfig) is "
        "deprecated; pass a repro.core.pipeline.PipelineConfig instead "
        "(or call repro.core.pipeline.run_catapult)",
        DeprecationWarning, stacklevel=2)
    if budget is None:
        raise PipelineError("CATAPULT needs a PatternBudget")
    return _run_catapult(repository, budget, config or CatapultConfig())
