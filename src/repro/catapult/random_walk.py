"""Weighted random-walk candidate generation from summary graphs.

CATAPULT extracts candidate canned patterns from each cluster summary
graph with random walks whose step probabilities are proportional to
edge support: substructures shared by many cluster members are walked
(and therefore proposed) more often, which is exactly the coverage
bias the final greedy selection wants in its candidate pool.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set, Tuple

from repro.graph.graph import Graph, edge_key
from repro.matching.canonical import canonical_code
from repro.patterns.base import Pattern, PatternBudget
from repro.summary.closure import SummaryGraph


def _weighted_choice(items: List[Tuple[Tuple[int, int], int]],
                     rng: random.Random) -> Tuple[int, int]:
    """Pick an edge key proportionally to its support weight."""
    total = sum(weight for _, weight in items)
    pick = rng.random() * total
    acc = 0.0
    for key, weight in items:
        acc += weight
        if acc >= pick:
            return key
    return items[-1][0]


def walk_candidate(summary: SummaryGraph, budget: PatternBudget,
                   rng: random.Random) -> Optional[Graph]:
    """One weighted random walk: a connected subgraph of the summary.

    Starts at a support-weighted random edge and repeatedly adds a
    support-weighted incident edge until the node count reaches a
    target drawn uniformly from the budget's size range.  Returns the
    flattened (concrete-labeled) candidate, or None if the summary
    cannot reach the minimum size from the chosen start.
    """
    if summary.size() == 0:
        return None
    target = rng.randint(budget.min_size, budget.max_size)
    all_edges = [(key, info.support) for key, info in summary.edges.items()]
    start = _weighted_choice(all_edges, rng)
    nodes: Set[int] = set(start)
    edges: Set[Tuple[int, int]] = {start}
    while len(nodes) < target:
        frontier: List[Tuple[Tuple[int, int], int]] = []
        for u in nodes:
            for v in summary.neighbors(u):
                key = edge_key(u, v)
                if key not in edges:
                    frontier.append((key, summary.edges[key].support))
        if not frontier:
            break
        key = _weighted_choice(frontier, rng)
        edges.add(key)
        nodes.update(key)
    if len(nodes) < budget.min_size:
        return None
    # close cycles: summary edges internal to the walked node set are
    # added with probability proportional to their support, so ring
    # motifs shared by many members surface as cyclic candidates
    max_support = max(info.support for info in summary.edges.values())
    for u in nodes:
        for v in summary.neighbors(u):
            if v <= u or v not in nodes:
                continue
            key = edge_key(u, v)
            if key in edges:
                continue
            if rng.random() < summary.edges[key].support / max_support:
                edges.add(key)
    candidate = Graph(name="walk")
    for node in nodes:
        candidate.add_node(node,
                           label=summary.sample_node_label(node, rng))
    for u, v in edges:
        candidate.add_edge(u, v,
                           label=summary.sample_edge_label(u, v, rng))
    return candidate.normalized()


def generate_candidates(summary: SummaryGraph, budget: PatternBudget,
                        walks: int, rng: random.Random,
                        source: str = "catapult",
                        validator=None) -> List[Pattern]:
    """Run ``walks`` random walks and return deduplicated candidates.

    ``validator`` (graph -> bool), when given, drops candidates that
    do not actually occur in the underlying data — summary graphs are
    closures, so a walk can stitch together edges no single member
    contains.
    """
    seen: Set[str] = set()
    candidates: List[Pattern] = []
    for _ in range(walks):
        graph = walk_candidate(summary, budget, rng)
        if graph is None:
            continue
        code = canonical_code(graph)
        if code in seen:
            continue
        seen.add(code)
        if validator is not None and not validator(graph):
            continue
        candidates.append(Pattern(graph, source=source))
    return candidates
