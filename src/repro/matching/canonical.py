"""Canonical codes for small labeled graphs.

A canonical code is a string that is identical for two graphs iff
they are isomorphic (node and edge labels included).  It is used to
deduplicate candidate patterns and as a key for pattern indices.

The algorithm is classic colour refinement (1-WL) followed by
individualisation-refinement backtracking: the lexicographically
smallest adjacency encoding over all refinement-consistent orderings
is the code.  Branches that differ only by a transposition
automorphism are pruned (this keeps cliques/stars linear instead of
factorial).  Exact for all graphs; fast for the pattern sizes used
here (<= ~15 nodes).
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Tuple
from weakref import WeakKeyDictionary

from repro.graph.graph import Graph

#: Per-object memo for :func:`canonical_code`, invalidated through the
#: graph's mutation counter.  Clustering and dedup loops recompute the
#: code of the *same object* many times; this memo removes those
#: repeats without the content hashing `repro.perf.cached_canonical_code`
#: pays to unify distinct-but-equal objects.
_code_memo: "WeakKeyDictionary[Graph, Tuple[int, str]]" = \
    WeakKeyDictionary()

_memo_counters = {"hits": 0, "misses": 0}


def _memo_snapshot() -> Dict[str, int]:
    """Hit/miss counters of the per-object memo (internal; the
    documented surface is :func:`repro.obs.snapshot`)."""
    return dict(_memo_counters)


def canonical_memo_stats() -> Dict[str, int]:
    """Deprecated alias of the memo-counter slice of
    :func:`repro.obs.snapshot`; use that instead."""
    warnings.warn(
        "repro.matching.canonical_memo_stats() is deprecated; read "
        "canonical_memo_hits/misses from "
        "repro.obs.snapshot()['matching']",
        DeprecationWarning, stacklevel=2)
    return _memo_snapshot()


def reset_canonical_memo_stats() -> None:
    _memo_counters["hits"] = 0
    _memo_counters["misses"] = 0


def _refine(graph: Graph, colors: Dict[int, int]) -> Dict[int, int]:
    """Colour refinement until stable; colours are small ints."""
    nodes = sorted(graph.nodes())
    while True:
        signatures: Dict[int, Tuple] = {}
        for u in nodes:
            nbr_sig = sorted((colors[v], graph.edge_label(u, v))
                             for v in graph.neighbors(u))
            signatures[u] = (colors[u], tuple(nbr_sig))
        distinct = sorted(set(signatures.values()))
        remap = {sig: i for i, sig in enumerate(distinct)}
        new_colors = {u: remap[signatures[u]] for u in nodes}
        if new_colors == colors:
            return colors
        colors = new_colors


def _initial_colors(graph: Graph) -> Dict[int, int]:
    labels = sorted({graph.node_label(u) for u in graph.nodes()})
    index = {label: i for i, label in enumerate(labels)}
    return {u: index[graph.node_label(u)] for u in graph.nodes()}


def _encode(graph: Graph, order: List[int]) -> str:
    """Adjacency encoding of the graph under a fixed node order."""
    position = {u: i for i, u in enumerate(order)}
    rows = [f"n{i}:{graph.node_label(u)}" for i, u in enumerate(order)]
    edges: List[str] = []
    for u, v in graph.edges():
        a, b = sorted((position[u], position[v]))
        edges.append(f"e{a:03d},{b:03d}:{graph.edge_label(u, v)}")
    edges.sort()
    return "|".join(rows) + "#" + "|".join(edges)


def _transposition_automorphism(graph: Graph, u: int, v: int) -> bool:
    """True iff swapping ``u`` and ``v`` is a label-preserving automorphism."""
    if graph.node_label(u) != graph.node_label(v):
        return False
    nbrs_u = {w for w in graph.neighbors(u) if w != v}
    nbrs_v = {w for w in graph.neighbors(v) if w != u}
    if nbrs_u != nbrs_v:
        return False
    for w in nbrs_u:
        if graph.edge_label(u, w) != graph.edge_label(v, w):
            return False
    return True


class _CanonicalSearch:
    """Backtracking search for the minimal encoding and its order."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.best_code = ""
        self.best_order: List[int] = []

    def run(self) -> None:
        colors = _refine(self.graph, _initial_colors(self.graph))
        self._search([], colors)

    def _search(self, prefix: List[int], colors: Dict[int, int]) -> None:
        graph = self.graph
        if len(prefix) == graph.order():
            code = _encode(graph, prefix)
            if not self.best_code or code < self.best_code:
                self.best_code = code
                self.best_order = list(prefix)
            return
        placed = set(prefix)
        cells: Dict[int, List[int]] = {}
        for u in graph.nodes():
            if u not in placed:
                cells.setdefault(colors[u], []).append(u)
        cell = sorted(cells[min(cells)])
        if len(cell) == 1:
            prefix.append(cell[0])
            self._search(prefix, colors)
            prefix.pop()
            return
        branched: List[int] = []
        for u in cell:
            # prune branches identical to an earlier one up to a swap
            if any(_transposition_automorphism(graph, u, w)
                   for w in branched):
                continue
            branched.append(u)
            new_colors = dict(colors)
            new_colors[u] = -len(prefix) - 1  # unique negative colour
            new_colors = _refine(graph, new_colors)
            prefix.append(u)
            self._search(prefix, new_colors)
            prefix.pop()


def canonical_code(graph: Graph) -> str:
    """Canonical string code; equal iff graphs are isomorphic.

    Memoized per graph object, keyed by
    :meth:`repro.graph.graph.Graph.version`, so repeated calls on an
    unmodified graph skip the backtracking search.
    """
    if graph.order() == 0:
        return "#"
    version = graph.version()
    cached = _code_memo.get(graph)
    if cached is not None and cached[0] == version:
        _memo_counters["hits"] += 1
        return cached[1]
    _memo_counters["misses"] += 1
    search = _CanonicalSearch(graph)
    search.run()
    _code_memo[graph] = (version, search.best_code)
    return search.best_code


def canonical_form(graph: Graph) -> Graph:
    """A canonically-relabeled copy (nodes 0..n-1 in canonical order).

    Two isomorphic graphs map to copies for which
    :meth:`repro.graph.Graph.same_as` holds.
    """
    if graph.order() == 0:
        return graph.copy()
    search = _CanonicalSearch(graph)
    search.run()
    mapping = {u: i for i, u in enumerate(search.best_order)}
    return graph.relabeled(mapping)
