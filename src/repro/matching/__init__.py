"""Subgraph matching: VF2-style embedding search and canonical codes."""

from repro.matching.canonical import (
    canonical_code,
    canonical_form,
    canonical_memo_stats,
    reset_canonical_memo_stats,
)
from repro.matching.edit_distance import (
    MAX_EXACT_NODES,
    ged_similarity,
    graph_edit_distance,
)
from repro.matching.isomorphism import (
    WILDCARD,
    SubgraphMatcher,
    are_isomorphic,
    count_embeddings,
    covered_edges,
    find_embedding,
    is_subgraph,
    kernel_stats,
    labels_compatible,
    reset_kernel_stats,
    subgraph_embeddings,
)

__all__ = [
    "WILDCARD",
    "SubgraphMatcher",
    "are_isomorphic",
    "canonical_code",
    "canonical_form",
    "canonical_memo_stats",
    "reset_canonical_memo_stats",
    "MAX_EXACT_NODES",
    "ged_similarity",
    "graph_edit_distance",
    "count_embeddings",
    "covered_edges",
    "find_embedding",
    "is_subgraph",
    "kernel_stats",
    "labels_compatible",
    "reset_kernel_stats",
    "subgraph_embeddings",
]
