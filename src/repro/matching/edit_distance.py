"""Exact graph edit distance for small labeled graphs.

Branch-and-bound over node assignments with unit costs (insert /
delete / relabel, for nodes and edges).  Exact for the pattern sizes
this library displays (<= ~8 nodes); used as the strictest of the
three pattern-similarity methods (feature < mcs < ged).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import GraphError
from repro.graph.graph import Graph

#: refuse exact search above this size (cost grows factorially)
MAX_EXACT_NODES = 9

_DELETED = -1


def _greedy_upper_bound(g1: Graph, g2: Graph) -> int:
    """Cost of a simple label-greedy assignment (valid upper bound)."""
    nodes1 = sorted(g1.nodes())
    available = sorted(g2.nodes())
    mapping: Dict[int, int] = {}
    for u in nodes1:
        best = None
        for v in available:
            if g2.node_label(v) == g1.node_label(u):
                best = v
                break
        if best is None and available:
            best = available[0]
        if best is not None:
            mapping[u] = best
            available.remove(best)
        else:
            mapping[u] = _DELETED
    return _assignment_cost(g1, g2, mapping)


def _assignment_cost(g1: Graph, g2: Graph,
                     mapping: Dict[int, int]) -> int:
    """Total edit cost of a complete assignment."""
    cost = 0
    used = {v for v in mapping.values() if v != _DELETED}
    for u, v in mapping.items():
        if v == _DELETED:
            cost += 1
        elif g1.node_label(u) != g2.node_label(v):
            cost += 1
    cost += g2.order() - len(used)  # node insertions
    # edge costs: compare mapped pairs
    for u1, u2 in g1.edges():
        v1, v2 = mapping[u1], mapping[u2]
        if v1 == _DELETED or v2 == _DELETED:
            cost += 1  # edge deleted with its endpoint
        elif not g2.has_edge(v1, v2):
            cost += 1
        elif g1.edge_label(u1, u2) != g2.edge_label(v1, v2):
            cost += 1
    inverse = {v: u for u, v in mapping.items() if v != _DELETED}
    for v1, v2 in g2.edges():
        u1, u2 = inverse.get(v1), inverse.get(v2)
        if u1 is None or u2 is None:
            cost += 1  # edge inserted with an inserted endpoint
        elif not g1.has_edge(u1, u2):
            cost += 1
        # label mismatches of shared edges already counted above
    return cost


def graph_edit_distance(g1: Graph, g2: Graph,
                        max_nodes: int = MAX_EXACT_NODES) -> int:
    """Exact unit-cost graph edit distance.

    Raises :class:`GraphError` if either graph exceeds ``max_nodes``
    (the exact search is factorial; use the feature or MCS similarity
    for bigger structures).
    """
    if g1.order() > max_nodes or g2.order() > max_nodes:
        raise GraphError(
            f"exact GED limited to {max_nodes}-node graphs "
            f"(got {g1.order()} and {g2.order()})")
    if g1.order() == 0:
        return g2.order() + g2.size()
    if g2.order() == 0:
        return g1.order() + g1.size()

    nodes1 = sorted(g1.nodes(), key=lambda u: -g1.degree(u))
    nodes2 = sorted(g2.nodes())
    best = [_greedy_upper_bound(g1, g2)]

    def partial_cost(mapping: Dict[int, int], depth: int) -> int:
        """Cost of decisions made so far (edges among placed nodes)."""
        cost = 0
        used = set()
        placed = nodes1[:depth]
        for u in placed:
            v = mapping[u]
            if v == _DELETED:
                cost += 1
            else:
                used.add(v)
                if g1.node_label(u) != g2.node_label(v):
                    cost += 1
        for i, u1 in enumerate(placed):
            for u2 in placed[i + 1:]:
                e1 = g1.has_edge(u1, u2)
                v1, v2 = mapping[u1], mapping[u2]
                if v1 == _DELETED or v2 == _DELETED:
                    if e1:
                        cost += 1
                    continue
                e2 = g2.has_edge(v1, v2)
                if e1 and e2:
                    if g1.edge_label(u1, u2) != g2.edge_label(v1, v2):
                        cost += 1
                elif e1 != e2:
                    cost += 1
        return cost

    def lower_bound(mapping: Dict[int, int], depth: int) -> int:
        """Admissible remainder estimate: node-count imbalance."""
        remaining1 = len(nodes1) - depth
        used = sum(1 for u in nodes1[:depth]
                   if mapping[u] != _DELETED)
        remaining2 = len(nodes2) - used
        return abs(remaining1 - remaining2)

    def search(mapping: Dict[int, int], depth: int,
               used: set) -> None:
        current = partial_cost(mapping, depth)
        if current + lower_bound(mapping, depth) >= best[0]:
            return
        if depth == len(nodes1):
            total = _assignment_cost(g1, g2, mapping)
            if total < best[0]:
                best[0] = total
            return
        u = nodes1[depth]
        for v in nodes2:
            if v in used:
                continue
            mapping[u] = v
            used.add(v)
            search(mapping, depth + 1, used)
            used.discard(v)
        mapping[u] = _DELETED
        search(mapping, depth + 1, used)
        del mapping[u]

    search({}, 0, set())
    return best[0]


def ged_similarity(g1: Graph, g2: Graph,
                   max_nodes: int = MAX_EXACT_NODES) -> float:
    """GED normalised to [0, 1]: 1 - ged / (|V1|+|V2|+|E1|+|E2|).

    The denominator is the cost of deleting one graph entirely and
    inserting the other, so the ratio is always in [0, 1].
    """
    denominator = g1.order() + g2.order() + g1.size() + g2.size()
    if denominator == 0:
        return 1.0
    distance = graph_edit_distance(g1, g2, max_nodes=max_nodes)
    return max(0.0, 1.0 - distance / denominator)
