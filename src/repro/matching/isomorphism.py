"""Subgraph isomorphism and graph isomorphism.

A VF2-style backtracking matcher specialised for the small patterns
and small/medium data graphs this library manipulates.  Node and edge
labels must match exactly unless the pattern uses the :data:`WILDCARD`
label, which matches anything.

Two matching semantics are provided:

* **monomorphism** (default): every pattern edge must map to a target
  edge; extra edges between image nodes are allowed.  This is the
  semantics of "pattern p covers graph G" in the canned-pattern
  literature (p appears as a — not necessarily induced — subgraph).
* **induced**: additionally, non-adjacent pattern nodes must map to
  non-adjacent target nodes.

Two kernels implement that contract:

* ``kernel="indexed"`` (default) runs over the target's compact CSR
  view (:meth:`repro.graph.graph.Graph.compact`): candidate pools are
  precomputed per pattern node — filtered through the interned label
  table, degree, and a neighbor-label-id-multiset signature — and
  partial mappings extend by intersecting the pool with the
  *smallest* already-matched neighbor image's neighbor slice.
  Adjacency and edge-label tests are binary searches over the sorted
  slice; the kernel works in compact positions throughout and
  converts back to node ids only when an embedding is yielded.
* ``kernel="legacy"`` is the pre-optimization kernel (label-only
  pools, first-matched-neighbor anchoring).  It is retained as the
  equivalence oracle for ``tests/test_matching_kernel.py`` and the
  baseline ``benchmarks/bench_kernel.py`` measures pruning against.

The kernels enumerate the same embeddings in the same *order*: the
indexed kernel's anchored pools walk the first matched image's
neighbors in edge-insertion order (the CSR's ``ins_neighbors`` run),
exactly the sequence the legacy kernel's ``neighbors()`` loop
produces.  Capped enumerations (``max_results``/``max_embeddings``)
are therefore identical across kernels even when the cap binds —
``benchmarks/bench_runner.py`` gates pipeline pattern sets on it.
The default kernel can be overridden process-wide through the
``REPRO_KERNEL`` environment variable (the bench harness drives its
legacy-oracle runs with it).  Kernel work is instrumented:
:func:`kernel_stats` exposes ``feasibility_checks``,
``recursive_calls``, and ``candidates_pruned`` counters (also merged
into :func:`repro.perf.cache_stats`).
"""

from __future__ import annotations

import os
import warnings
from bisect import bisect_left
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.graph.graph import Graph
from repro.resilience.chaos import site as chaos_site
from repro.errors import OptionError

WILDCARD = "*"

#: Environment variable overriding the process-wide default kernel.
KERNEL_ENV = "REPRO_KERNEL"


def default_kernel() -> str:
    """The kernel used when a matcher is built without an explicit
    choice: ``$REPRO_KERNEL`` if set (and non-empty), else
    ``"indexed"``.  Read per matcher construction, so the bench
    harness can flip it between runs."""
    return os.environ.get(KERNEL_ENV) or "indexed"

#: Process-global kernel instrumentation.  ``feasibility_checks``
#: counts per-candidate feasibility evaluations (the unit the
#: bench-kernel gate tracks), ``recursive_calls`` counts backtracking
#: extensions, and ``candidates_pruned`` counts target nodes excluded
#: before feasibility was ever evaluated (pool construction plus
#: anchor-intersection filtering).
_kernel_counters = {
    "feasibility_checks": 0,
    "recursive_calls": 0,
    "candidates_pruned": 0,
}


def _kernel_snapshot() -> Dict[str, int]:
    """Snapshot of the matching-kernel counters (internal; the
    documented surface is :func:`repro.obs.snapshot`)."""
    return dict(_kernel_counters)


def kernel_stats() -> Dict[str, int]:
    """Deprecated alias of the kernel-counter slice of
    :func:`repro.obs.snapshot`; use that instead."""
    warnings.warn(
        "repro.matching.kernel_stats() is deprecated; read the "
        "kernel counters from repro.obs.snapshot()['matching']",
        DeprecationWarning, stacklevel=2)
    return _kernel_snapshot()


def reset_kernel_stats() -> None:
    """Zero the matching-kernel counters."""
    for key in _kernel_counters:
        _kernel_counters[key] = 0


def labels_compatible(pattern_label: str, target_label: str) -> bool:
    """Exact label match, with ``*`` in the pattern matching anything."""
    return pattern_label == WILDCARD or pattern_label == target_label


def _matching_order(pattern: Graph) -> List[int]:
    """BFS order from a max-degree node; keeps the frontier connected.

    A connected frontier lets every node after the first be placed
    only next to already-matched nodes, which prunes aggressively.
    Disconnected patterns fall back to per-component BFS orders.
    """
    order: List[int] = []
    visited: Set[int] = set()
    nodes = sorted(pattern.nodes(), key=lambda u: -pattern.degree(u))
    for root in nodes:
        if root in visited:
            continue
        queue = [root]
        visited.add(root)
        while queue:
            # expand the frontier node with most matched neighbors first
            queue.sort(key=lambda u: (-sum(1 for w in pattern.neighbors(u)
                                           if w in visited),
                                      -pattern.degree(u)))
            u = queue.pop(0)
            order.append(u)
            for v in sorted(pattern.neighbors(u)):
                if v not in visited:
                    visited.add(v)
                    queue.append(v)
    return order


class SubgraphMatcher:
    """Reusable matcher for one (pattern, target) pair.

    Parameters
    ----------
    pattern, target:
        Graphs to match; the pattern is the smaller query structure.
    induced:
        Use induced-subgraph semantics (see module docstring).
    kernel:
        ``"indexed"`` or ``"legacy"`` (see module docstring); None
        defers to :func:`default_kernel`.
    """

    def __init__(self, pattern: Graph, target: Graph,
                 induced: bool = False,
                 kernel: Optional[str] = None) -> None:
        if kernel is None:
            kernel = default_kernel()
        if kernel not in ("indexed", "legacy"):
            raise OptionError(f"unknown matching kernel {kernel!r}")
        self.pattern = pattern
        self.target = target
        self.induced = induced
        self.kernel = kernel
        self._order = _matching_order(pattern)
        # pattern neighbors already matched when a node is placed
        self._placed_before: List[List[int]] = []
        placed: Set[int] = set()
        for u in self._order:
            self._placed_before.append(
                [w for w in self.pattern.neighbors(u) if w in placed])
            placed.add(u)
        if kernel == "indexed":
            c = target.compact()
            self._c = c
            self._node_ids = c.node_ids
            self._offsets = c.offsets
            self._csr_neighbors = c.neighbors
            self._csr_edge_labels = c.edge_label_ids
            self._ins_neighbors = c.ins_neighbors
            self._pools: Dict[int, Tuple[int, ...]] = {}
            self._pool_sets: Dict[int, FrozenSet[int]] = {}
            self._build_pools()
            self._build_edge_requirements()
        else:
            # candidate pools by label (wildcard -> all target nodes)
            self._by_label: Dict[str, List[int]] = {}
            for node in target.nodes():
                self._by_label.setdefault(
                    target.node_label(node), []).append(node)

    # ------------------------------------------------------------------
    # indexed kernel: per-pattern-node candidate pools
    # ------------------------------------------------------------------
    def _build_pools(self) -> None:
        """Candidate pool per pattern node: label + degree + signature.

        Pools hold compact *positions*.  The base set per pattern node
        comes straight off the target's interned label table
        (``label_positions``); degrees are CSR slice widths.  The
        signature filter requires, for every non-wildcard label that
        appears ``c`` times in the pattern node's neighborhood, at
        least ``c`` neighbors with that label id around the target
        position.  This is a necessary condition under both
        monomorphism and induced semantics (pattern neighbors always
        map to target neighbors), so filtering by it never loses
        embeddings.  A pattern node or neighbor label absent from the
        target's label table prunes to the empty pool immediately.
        """
        pattern, c = self.pattern, self._c
        n_target = c.order()
        offsets = c.offsets
        target_nlc = c.neighbor_label_id_counts()
        pattern_nlc = pattern.neighbor_label_counts()
        for u in pattern.nodes():
            label = pattern.node_label(u)
            if label == WILDCARD:
                base = range(n_target)
            else:
                lid = c.label_id(label)
                base = () if lid is None else c.label_positions(lid)
            degree_u = pattern.degree(u)
            # absent labels intern to -1: no position carries them,
            # so counts.get(-1, 0) < need rejects as it must
            required: Dict[int, int] = {}
            for lbl, count in pattern_nlc[u].items():
                if lbl == WILDCARD:
                    continue
                req_lid = c.label_id(lbl)
                required[-1 if req_lid is None else req_lid] = count
            pool = []
            for p in base:
                if offsets[p + 1] - offsets[p] < degree_u:
                    continue
                counts = target_nlc[p]
                if any(counts.get(lid, 0) < need
                       for lid, need in required.items()):
                    continue
                pool.append(p)
            self._pools[u] = tuple(pool)
            self._pool_sets[u] = frozenset(pool)
            _kernel_counters["candidates_pruned"] += n_target - len(pool)

    def _build_edge_requirements(self) -> None:
        """Intern every pattern edge label against the target table.

        ``_edge_req[(u, w)]`` is the target edge-label id a mapped
        pattern edge must carry: ``-1`` for a wildcard pattern label
        (any target label passes) and ``-2`` for a pattern label the
        target never uses (no edge can pass).  Interning once here
        turns the per-extension label test into a single int compare
        against the CSR's ``edge_label_ids``.
        """
        c = self._c
        self._edge_req: Dict[Tuple[int, int], int] = {}
        for (a, b) in self.pattern.edges():
            label = self.pattern.edge_label(a, b)
            if label == WILDCARD:
                req = -1
            else:
                elid = c.edge_label_id(label)
                req = -2 if elid is None else elid
            self._edge_req[(a, b)] = req
            self._edge_req[(b, a)] = req

    # ------------------------------------------------------------------
    # legacy kernel helpers
    # ------------------------------------------------------------------
    def _candidates(self, u: int) -> List[int]:
        label = self.pattern.node_label(u)
        if label == WILDCARD:
            return list(self.target.nodes())
        return self._by_label.get(label, [])

    def _feasible(self, u: int, t: int, mapping: Dict[int, int],
                  used: Set[int], matched_nbrs: List[int]) -> bool:
        _kernel_counters["feasibility_checks"] += 1
        if t in used:
            return False
        if not labels_compatible(self.pattern.node_label(u),
                                 self.target.node_label(t)):
            return False
        if self.target.degree(t) < self.pattern.degree(u):
            return False
        for w in matched_nbrs:
            image = mapping[w]
            if not self.target.has_edge(t, image):
                return False
            if not labels_compatible(self.pattern.edge_label(u, w),
                                     self.target.edge_label(t, image)):
                return False
        if self.induced:
            # matched non-neighbors of u must not be adjacent to t
            for w, image in mapping.items():
                if w not in matched_nbrs and not self.pattern.has_edge(u, w):
                    if self.target.has_edge(t, image):
                        return False
        return True

    def _feasible_indexed(self, u: int, t: int, mapping: Dict[int, int],
                          used: Set[int], matched_nbrs: List[int]) -> bool:
        """Feasibility for pool members: labels/degree already hold.

        ``t`` and every mapped image are compact positions; adjacency
        plus edge-label compatibility collapse into one binary search
        over ``t``'s sorted neighbor slice (the found slot indexes the
        aligned ``edge_label_ids`` run).
        """
        _kernel_counters["feasibility_checks"] += 1
        if t in used:
            return False
        neighbors = self._csr_neighbors
        lo = self._offsets[t]
        hi = self._offsets[t + 1]
        for w in matched_nbrs:
            image = mapping[w]
            slot = bisect_left(neighbors, image, lo, hi)
            if slot >= hi or neighbors[slot] != image:
                return False
            req = self._edge_req[(u, w)]
            if req >= 0:
                if self._csr_edge_labels[slot] != req:
                    return False
            elif req == -2:
                return False
        if self.induced:
            # matched non-neighbors of u must not be adjacent to t
            for w, image in mapping.items():
                if w not in matched_nbrs and not self.pattern.has_edge(u, w):
                    slot = bisect_left(neighbors, image, lo, hi)
                    if slot < hi and neighbors[slot] == image:
                        return False
        return True

    def iter_embeddings(self,
                        max_results: Optional[int] = None
                        ) -> Iterator[Dict[int, int]]:
        """Yield pattern-node -> target-node mappings.

        ``max_results`` caps enumeration (None = unbounded).  The empty
        pattern yields exactly one empty mapping.
        """
        if self.pattern.order() > self.target.order():
            return
        if self.pattern.order() == 0:
            yield {}
            return
        yield from self._extend({}, set(), 0, [max_results])

    def _extend(self, mapping: Dict[int, int], used: Set[int], depth: int,
                remaining: List[Optional[int]]) -> Iterator[Dict[int, int]]:
        _kernel_counters["recursive_calls"] += 1
        if remaining[0] is not None and remaining[0] <= 0:
            return
        u = self._order[depth]
        matched_nbrs = self._placed_before[depth]
        if self.kernel == "indexed":
            pool, feasible = self._indexed_pool(u, mapping, matched_nbrs), \
                self._feasible_indexed
        elif matched_nbrs:
            # intersect neighborhoods of already-placed images
            anchor = mapping[matched_nbrs[0]]
            pool, feasible = [t for t in self.target.neighbors(anchor)], \
                self._feasible
        else:
            pool, feasible = self._candidates(u), self._feasible
        for t in pool:
            if not feasible(u, t, mapping, used, matched_nbrs):
                continue
            mapping[u] = t
            used.add(t)
            if depth + 1 == len(self._order):
                if self.kernel == "indexed":
                    # mapping holds compact positions; embeddings are
                    # reported in original node ids
                    ids = self._node_ids
                    yield {w: ids[p] for w, p in mapping.items()}
                else:
                    yield dict(mapping)
                if remaining[0] is not None:
                    remaining[0] -= 1
                    if remaining[0] <= 0:
                        del mapping[u]
                        used.discard(t)
                        return
            else:
                yield from self._extend(mapping, used, depth + 1, remaining)
            del mapping[u]
            used.discard(t)

    def _indexed_pool(self, u: int, mapping: Dict[int, int],
                      matched_nbrs: List[int]) -> List[int]:
        """Candidates for ``u``: pool ∩ matched-image slices, in the
        first matched image's insertion order.

        Pruning anchors on the matched neighbor whose image has the
        narrowest CSR slice (first minimum wins ties, keeping the
        choice deterministic) — the intersection with the pool set is
        smallest there.  *Ordering* anchors on the first matched
        neighbor's ``ins_neighbors`` run: that is exactly the
        ``neighbors()`` sequence the legacy kernel walks, so the two
        kernels yield embeddings in the same order — capped
        enumerations (``max_embeddings``) depend on it.
        """
        if not matched_nbrs:
            return list(self._pools[u])
        offsets = self._offsets
        anchor_lo = anchor_hi = -1
        for w in matched_nbrs:
            image = mapping[w]
            lo = offsets[image]
            hi = offsets[image + 1]
            if anchor_lo < 0 or hi - lo < anchor_hi - anchor_lo:
                anchor_lo, anchor_hi = lo, hi
        members = self._pool_sets[u].intersection(
            self._csr_neighbors[anchor_lo:anchor_hi])
        first = mapping[matched_nbrs[0]]
        first_lo = offsets[first]
        first_hi = offsets[first + 1]
        pool = [p for p in self._ins_neighbors[first_lo:first_hi]
                if p in members]
        _kernel_counters["candidates_pruned"] += \
            (first_hi - first_lo) - len(pool)
        return pool


def subgraph_embeddings(pattern: Graph, target: Graph,
                        induced: bool = False,
                        max_results: Optional[int] = None
                        ) -> List[Dict[int, int]]:
    """All (or first ``max_results``) embeddings of pattern in target."""
    matcher = SubgraphMatcher(pattern, target, induced=induced)
    return list(matcher.iter_embeddings(max_results=max_results))


def find_embedding(pattern: Graph, target: Graph,
                   induced: bool = False) -> Optional[Dict[int, int]]:
    """First embedding found, or None."""
    matcher = SubgraphMatcher(pattern, target, induced=induced)
    for mapping in matcher.iter_embeddings(max_results=1):
        return mapping
    return None


def is_subgraph(pattern: Graph, target: Graph,
                induced: bool = False) -> bool:
    """True iff the pattern embeds in the target.

    This is the matcher entry every selection loop drives, so it is a
    named :mod:`repro.resilience.chaos` injection site
    (``"matching.is_subgraph"``) — a scripted fault here surfaces as
    a :class:`repro.errors.WorkerFailure` the calling stage must
    absorb.
    """
    chaos_site("matching.is_subgraph")
    return find_embedding(pattern, target, induced=induced) is not None


def count_embeddings(pattern: Graph, target: Graph,
                     induced: bool = False,
                     cap: Optional[int] = None) -> int:
    """Number of embeddings, optionally capped at ``cap``."""
    matcher = SubgraphMatcher(pattern, target, induced=induced)
    count = 0
    for _ in matcher.iter_embeddings(max_results=cap):
        count += 1
    return count


def covered_edges(pattern: Graph, target: Graph,
                  max_embeddings: Optional[int] = 200
                  ) -> Set[Tuple[int, int]]:
    """Union of target edges covered by embeddings of the pattern.

    This is the quantity the coverage measures need; it converges
    quickly, so enumeration is capped by default.  Enumeration also
    stops the moment every target edge is covered — checked per edge
    added, not per embedding, so saturation on the last embedding's
    first edge skips the rest of the search.
    """
    covered: Set[Tuple[int, int]] = set()
    total = target.size()
    if total == 0 or pattern.size() == 0:
        return covered
    matcher = SubgraphMatcher(pattern, target, induced=False)
    for mapping in matcher.iter_embeddings(max_results=max_embeddings):
        for u, v in pattern.edges():
            a, b = mapping[u], mapping[v]
            covered.add((a, b) if a <= b else (b, a))
            if len(covered) == total:
                return covered
    return covered


def are_isomorphic(g1: Graph, g2: Graph) -> bool:
    """Exact label-preserving graph isomorphism."""
    if g1.order() != g2.order() or g1.size() != g2.size():
        return False
    if sorted(g1.label_multiset().items()) != sorted(
            g2.label_multiset().items()):
        return False
    if g1.degree_sequence() != g2.degree_sequence():
        return False
    return is_subgraph(g1, g2, induced=True)
