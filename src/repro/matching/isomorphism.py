"""Subgraph isomorphism and graph isomorphism.

A VF2-style backtracking matcher specialised for the small patterns
and small/medium data graphs this library manipulates.  Node and edge
labels must match exactly unless the pattern uses the :data:`WILDCARD`
label, which matches anything.

Two matching semantics are provided:

* **monomorphism** (default): every pattern edge must map to a target
  edge; extra edges between image nodes are allowed.  This is the
  semantics of "pattern p covers graph G" in the canned-pattern
  literature (p appears as a — not necessarily induced — subgraph).
* **induced**: additionally, non-adjacent pattern nodes must map to
  non-adjacent target nodes.

Two kernels implement that contract:

* ``kernel="indexed"`` (default) precomputes one candidate pool per
  pattern node at construction — filtered by label, degree, and a
  neighbor-label-multiset signature — and extends partial mappings by
  intersecting the pool with the *smallest* already-matched neighbor
  image's adjacency set (cached on the target via
  :meth:`repro.graph.graph.Graph.adjacency_sets`).
* ``kernel="legacy"`` is the pre-optimization kernel (label-only
  pools, first-matched-neighbor anchoring).  It is retained as the
  equivalence oracle for ``tests/test_matching_kernel.py`` and the
  baseline ``benchmarks/bench_kernel.py`` measures pruning against.

Both kernels enumerate the same embedding *set*; the enumeration
*order* differs (the indexed kernel visits candidates in sorted node
order), so capped enumerations are only guaranteed identical across
kernels when the cap does not bind.  Kernel work is instrumented:
:func:`kernel_stats` exposes ``feasibility_checks``,
``recursive_calls``, and ``candidates_pruned`` counters (also merged
into :func:`repro.perf.cache_stats`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.graph.graph import Graph
from repro.resilience.chaos import site as chaos_site
from repro.errors import OptionError

WILDCARD = "*"

#: Process-global kernel instrumentation.  ``feasibility_checks``
#: counts per-candidate feasibility evaluations (the unit the
#: bench-kernel gate tracks), ``recursive_calls`` counts backtracking
#: extensions, and ``candidates_pruned`` counts target nodes excluded
#: before feasibility was ever evaluated (pool construction plus
#: anchor-intersection filtering).
_kernel_counters = {
    "feasibility_checks": 0,
    "recursive_calls": 0,
    "candidates_pruned": 0,
}


def kernel_stats() -> Dict[str, int]:
    """Snapshot of the matching-kernel counters."""
    return dict(_kernel_counters)


def reset_kernel_stats() -> None:
    """Zero the matching-kernel counters."""
    for key in _kernel_counters:
        _kernel_counters[key] = 0


def labels_compatible(pattern_label: str, target_label: str) -> bool:
    """Exact label match, with ``*`` in the pattern matching anything."""
    return pattern_label == WILDCARD or pattern_label == target_label


def _matching_order(pattern: Graph) -> List[int]:
    """BFS order from a max-degree node; keeps the frontier connected.

    A connected frontier lets every node after the first be placed
    only next to already-matched nodes, which prunes aggressively.
    Disconnected patterns fall back to per-component BFS orders.
    """
    order: List[int] = []
    visited: Set[int] = set()
    nodes = sorted(pattern.nodes(), key=lambda u: -pattern.degree(u))
    for root in nodes:
        if root in visited:
            continue
        queue = [root]
        visited.add(root)
        while queue:
            # expand the frontier node with most matched neighbors first
            queue.sort(key=lambda u: (-sum(1 for w in pattern.neighbors(u)
                                           if w in visited),
                                      -pattern.degree(u)))
            u = queue.pop(0)
            order.append(u)
            for v in sorted(pattern.neighbors(u)):
                if v not in visited:
                    visited.add(v)
                    queue.append(v)
    return order


class SubgraphMatcher:
    """Reusable matcher for one (pattern, target) pair.

    Parameters
    ----------
    pattern, target:
        Graphs to match; the pattern is the smaller query structure.
    induced:
        Use induced-subgraph semantics (see module docstring).
    kernel:
        ``"indexed"`` (default) or ``"legacy"`` (see module docstring).
    """

    def __init__(self, pattern: Graph, target: Graph,
                 induced: bool = False, kernel: str = "indexed") -> None:
        if kernel not in ("indexed", "legacy"):
            raise OptionError(f"unknown matching kernel {kernel!r}")
        self.pattern = pattern
        self.target = target
        self.induced = induced
        self.kernel = kernel
        self._order = _matching_order(pattern)
        # pattern neighbors already matched when a node is placed
        self._placed_before: List[List[int]] = []
        placed: Set[int] = set()
        for u in self._order:
            self._placed_before.append(
                [w for w in self.pattern.neighbors(u) if w in placed])
            placed.add(u)
        if kernel == "indexed":
            self._adj: Dict[int, FrozenSet[int]] = target.adjacency_sets()
            self._pools: Dict[int, Tuple[int, ...]] = {}
            self._pool_sets: Dict[int, FrozenSet[int]] = {}
            self._build_pools()
        else:
            # candidate pools by label (wildcard -> all target nodes)
            self._by_label: Dict[str, List[int]] = {}
            for node in target.nodes():
                self._by_label.setdefault(
                    target.node_label(node), []).append(node)

    # ------------------------------------------------------------------
    # indexed kernel: per-pattern-node candidate pools
    # ------------------------------------------------------------------
    def _build_pools(self) -> None:
        """Candidate pool per pattern node: label + degree + signature.

        The signature filter requires, for every non-wildcard label
        that appears ``c`` times in the pattern node's neighborhood,
        at least ``c`` neighbors with that label around the target
        node.  This is a necessary condition under both monomorphism
        and induced semantics (pattern neighbors always map to target
        neighbors), so filtering by it never loses embeddings.
        """
        pattern, target = self.pattern, self.target
        n_target = target.order()
        label_index = target.label_index()
        target_nlc = target.neighbor_label_counts()
        pattern_nlc = pattern.neighbor_label_counts()
        for u in pattern.nodes():
            label = pattern.node_label(u)
            if label == WILDCARD:
                base: Tuple[int, ...] = tuple(target.nodes())
            else:
                base = label_index.get(label, ())
            degree_u = pattern.degree(u)
            required = {lbl: count
                        for lbl, count in pattern_nlc[u].items()
                        if lbl != WILDCARD}
            pool = []
            for t in base:
                if len(self._adj[t]) < degree_u:
                    continue
                counts = target_nlc[t]
                if any(counts.get(lbl, 0) < need
                       for lbl, need in required.items()):
                    continue
                pool.append(t)
            self._pools[u] = tuple(pool)
            self._pool_sets[u] = frozenset(pool)
            _kernel_counters["candidates_pruned"] += n_target - len(pool)

    # ------------------------------------------------------------------
    # legacy kernel helpers
    # ------------------------------------------------------------------
    def _candidates(self, u: int) -> List[int]:
        label = self.pattern.node_label(u)
        if label == WILDCARD:
            return list(self.target.nodes())
        return self._by_label.get(label, [])

    def _feasible(self, u: int, t: int, mapping: Dict[int, int],
                  used: Set[int], matched_nbrs: List[int]) -> bool:
        _kernel_counters["feasibility_checks"] += 1
        if t in used:
            return False
        if not labels_compatible(self.pattern.node_label(u),
                                 self.target.node_label(t)):
            return False
        if self.target.degree(t) < self.pattern.degree(u):
            return False
        for w in matched_nbrs:
            image = mapping[w]
            if not self.target.has_edge(t, image):
                return False
            if not labels_compatible(self.pattern.edge_label(u, w),
                                     self.target.edge_label(t, image)):
                return False
        if self.induced:
            # matched non-neighbors of u must not be adjacent to t
            for w, image in mapping.items():
                if w not in matched_nbrs and not self.pattern.has_edge(u, w):
                    if self.target.has_edge(t, image):
                        return False
        return True

    def _feasible_indexed(self, u: int, t: int, mapping: Dict[int, int],
                          used: Set[int], matched_nbrs: List[int]) -> bool:
        """Feasibility for pool members: labels/degree already hold."""
        _kernel_counters["feasibility_checks"] += 1
        if t in used:
            return False
        adj_t = self._adj[t]
        for w in matched_nbrs:
            image = mapping[w]
            if image not in adj_t:
                return False
            if not labels_compatible(self.pattern.edge_label(u, w),
                                     self.target.edge_label(t, image)):
                return False
        if self.induced:
            # matched non-neighbors of u must not be adjacent to t
            for w, image in mapping.items():
                if w not in matched_nbrs and not self.pattern.has_edge(u, w):
                    if image in adj_t:
                        return False
        return True

    def iter_embeddings(self,
                        max_results: Optional[int] = None
                        ) -> Iterator[Dict[int, int]]:
        """Yield pattern-node -> target-node mappings.

        ``max_results`` caps enumeration (None = unbounded).  The empty
        pattern yields exactly one empty mapping.
        """
        if self.pattern.order() > self.target.order():
            return
        if self.pattern.order() == 0:
            yield {}
            return
        yield from self._extend({}, set(), 0, [max_results])

    def _extend(self, mapping: Dict[int, int], used: Set[int], depth: int,
                remaining: List[Optional[int]]) -> Iterator[Dict[int, int]]:
        _kernel_counters["recursive_calls"] += 1
        if remaining[0] is not None and remaining[0] <= 0:
            return
        u = self._order[depth]
        matched_nbrs = self._placed_before[depth]
        if self.kernel == "indexed":
            pool, feasible = self._indexed_pool(u, mapping, matched_nbrs), \
                self._feasible_indexed
        elif matched_nbrs:
            # intersect neighborhoods of already-placed images
            anchor = mapping[matched_nbrs[0]]
            pool, feasible = [t for t in self.target.neighbors(anchor)], \
                self._feasible
        else:
            pool, feasible = self._candidates(u), self._feasible
        for t in pool:
            if not feasible(u, t, mapping, used, matched_nbrs):
                continue
            mapping[u] = t
            used.add(t)
            if depth + 1 == len(self._order):
                yield dict(mapping)
                if remaining[0] is not None:
                    remaining[0] -= 1
                    if remaining[0] <= 0:
                        del mapping[u]
                        used.discard(t)
                        return
            else:
                yield from self._extend(mapping, used, depth + 1, remaining)
            del mapping[u]
            used.discard(t)

    def _indexed_pool(self, u: int, mapping: Dict[int, int],
                      matched_nbrs: List[int]) -> List[int]:
        """Candidates for ``u``: pool ∩ smallest matched-image adjacency.

        Anchoring on the matched neighbor whose image has the fewest
        target neighbors minimises the intersection work; sorting
        keeps enumeration order deterministic regardless of set hash
        order.
        """
        if not matched_nbrs:
            return list(self._pools[u])
        adj = self._adj
        anchor_adj = min((adj[mapping[w]] for w in matched_nbrs), key=len)
        pool_set = self._pool_sets[u]
        pool = sorted(t for t in anchor_adj if t in pool_set)
        _kernel_counters["candidates_pruned"] += len(anchor_adj) - len(pool)
        return pool


def subgraph_embeddings(pattern: Graph, target: Graph,
                        induced: bool = False,
                        max_results: Optional[int] = None
                        ) -> List[Dict[int, int]]:
    """All (or first ``max_results``) embeddings of pattern in target."""
    matcher = SubgraphMatcher(pattern, target, induced=induced)
    return list(matcher.iter_embeddings(max_results=max_results))


def find_embedding(pattern: Graph, target: Graph,
                   induced: bool = False) -> Optional[Dict[int, int]]:
    """First embedding found, or None."""
    matcher = SubgraphMatcher(pattern, target, induced=induced)
    for mapping in matcher.iter_embeddings(max_results=1):
        return mapping
    return None


def is_subgraph(pattern: Graph, target: Graph,
                induced: bool = False) -> bool:
    """True iff the pattern embeds in the target.

    This is the matcher entry every selection loop drives, so it is a
    named :mod:`repro.resilience.chaos` injection site
    (``"matching.is_subgraph"``) — a scripted fault here surfaces as
    a :class:`repro.errors.WorkerFailure` the calling stage must
    absorb.
    """
    chaos_site("matching.is_subgraph")
    return find_embedding(pattern, target, induced=induced) is not None


def count_embeddings(pattern: Graph, target: Graph,
                     induced: bool = False,
                     cap: Optional[int] = None) -> int:
    """Number of embeddings, optionally capped at ``cap``."""
    matcher = SubgraphMatcher(pattern, target, induced=induced)
    count = 0
    for _ in matcher.iter_embeddings(max_results=cap):
        count += 1
    return count


def covered_edges(pattern: Graph, target: Graph,
                  max_embeddings: Optional[int] = 200
                  ) -> Set[Tuple[int, int]]:
    """Union of target edges covered by embeddings of the pattern.

    This is the quantity the coverage measures need; it converges
    quickly, so enumeration is capped by default.  Enumeration also
    stops the moment every target edge is covered — checked per edge
    added, not per embedding, so saturation on the last embedding's
    first edge skips the rest of the search.
    """
    covered: Set[Tuple[int, int]] = set()
    total = target.size()
    if total == 0 or pattern.size() == 0:
        return covered
    matcher = SubgraphMatcher(pattern, target, induced=False)
    for mapping in matcher.iter_embeddings(max_results=max_embeddings):
        for u, v in pattern.edges():
            a, b = mapping[u], mapping[v]
            covered.add((a, b) if a <= b else (b, a))
            if len(covered) == total:
                return covered
    return covered


def are_isomorphic(g1: Graph, g2: Graph) -> bool:
    """Exact label-preserving graph isomorphism."""
    if g1.order() != g2.order() or g1.size() != g2.size():
        return False
    if sorted(g1.label_multiset().items()) != sorted(
            g2.label_multiset().items()):
        return False
    if g1.degree_sequence() != g2.degree_sequence():
        return False
    return is_subgraph(g1, g2, induced=True)
