"""Subgraph isomorphism and graph isomorphism.

A VF2-style backtracking matcher specialised for the small patterns
and small/medium data graphs this library manipulates.  Node and edge
labels must match exactly unless the pattern uses the :data:`WILDCARD`
label, which matches anything.

Two matching semantics are provided:

* **monomorphism** (default): every pattern edge must map to a target
  edge; extra edges between image nodes are allowed.  This is the
  semantics of "pattern p covers graph G" in the canned-pattern
  literature (p appears as a — not necessarily induced — subgraph).
* **induced**: additionally, non-adjacent pattern nodes must map to
  non-adjacent target nodes.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.graph.graph import Graph

WILDCARD = "*"


def labels_compatible(pattern_label: str, target_label: str) -> bool:
    """Exact label match, with ``*`` in the pattern matching anything."""
    return pattern_label == WILDCARD or pattern_label == target_label


def _matching_order(pattern: Graph) -> List[int]:
    """BFS order from a max-degree node; keeps the frontier connected.

    A connected frontier lets every node after the first be placed
    only next to already-matched nodes, which prunes aggressively.
    Disconnected patterns fall back to per-component BFS orders.
    """
    order: List[int] = []
    visited: Set[int] = set()
    nodes = sorted(pattern.nodes(), key=lambda u: -pattern.degree(u))
    for root in nodes:
        if root in visited:
            continue
        queue = [root]
        visited.add(root)
        while queue:
            # expand the frontier node with most matched neighbors first
            queue.sort(key=lambda u: (-sum(1 for w in pattern.neighbors(u)
                                           if w in visited),
                                      -pattern.degree(u)))
            u = queue.pop(0)
            order.append(u)
            for v in sorted(pattern.neighbors(u)):
                if v not in visited:
                    visited.add(v)
                    queue.append(v)
    return order


class SubgraphMatcher:
    """Reusable matcher for one (pattern, target) pair.

    Parameters
    ----------
    pattern, target:
        Graphs to match; the pattern is the smaller query structure.
    induced:
        Use induced-subgraph semantics (see module docstring).
    """

    def __init__(self, pattern: Graph, target: Graph,
                 induced: bool = False) -> None:
        self.pattern = pattern
        self.target = target
        self.induced = induced
        self._order = _matching_order(pattern)
        # pattern neighbors already matched when a node is placed
        self._placed_before: List[List[int]] = []
        placed: Set[int] = set()
        for u in self._order:
            self._placed_before.append(
                [w for w in self.pattern.neighbors(u) if w in placed])
            placed.add(u)
        # candidate pools by label (wildcard -> all target nodes)
        self._by_label: Dict[str, List[int]] = {}
        for node in target.nodes():
            self._by_label.setdefault(target.node_label(node), []).append(node)

    def _candidates(self, u: int) -> List[int]:
        label = self.pattern.node_label(u)
        if label == WILDCARD:
            return list(self.target.nodes())
        return self._by_label.get(label, [])

    def _feasible(self, u: int, t: int, mapping: Dict[int, int],
                  used: Set[int], matched_nbrs: List[int]) -> bool:
        if t in used:
            return False
        if not labels_compatible(self.pattern.node_label(u),
                                 self.target.node_label(t)):
            return False
        if self.target.degree(t) < self.pattern.degree(u):
            return False
        for w in matched_nbrs:
            image = mapping[w]
            if not self.target.has_edge(t, image):
                return False
            if not labels_compatible(self.pattern.edge_label(u, w),
                                     self.target.edge_label(t, image)):
                return False
        if self.induced:
            # matched non-neighbors of u must not be adjacent to t
            for w, image in mapping.items():
                if w not in matched_nbrs and not self.pattern.has_edge(u, w):
                    if self.target.has_edge(t, image):
                        return False
        return True

    def iter_embeddings(self,
                        max_results: Optional[int] = None
                        ) -> Iterator[Dict[int, int]]:
        """Yield pattern-node -> target-node mappings.

        ``max_results`` caps enumeration (None = unbounded).  The empty
        pattern yields exactly one empty mapping.
        """
        if self.pattern.order() > self.target.order():
            return
        if self.pattern.order() == 0:
            yield {}
            return
        yield from self._extend({}, set(), 0, [max_results])

    def _extend(self, mapping: Dict[int, int], used: Set[int], depth: int,
                remaining: List[Optional[int]]) -> Iterator[Dict[int, int]]:
        if remaining[0] is not None and remaining[0] <= 0:
            return
        u = self._order[depth]
        matched_nbrs = self._placed_before[depth]
        if matched_nbrs:
            # intersect neighborhoods of already-placed images
            anchor = mapping[matched_nbrs[0]]
            pool: List[int] = [t for t in self.target.neighbors(anchor)]
        else:
            pool = self._candidates(u)
        for t in pool:
            if not self._feasible(u, t, mapping, used, matched_nbrs):
                continue
            mapping[u] = t
            used.add(t)
            if depth + 1 == len(self._order):
                yield dict(mapping)
                if remaining[0] is not None:
                    remaining[0] -= 1
                    if remaining[0] <= 0:
                        del mapping[u]
                        used.discard(t)
                        return
            else:
                yield from self._extend(mapping, used, depth + 1, remaining)
            del mapping[u]
            used.discard(t)


def subgraph_embeddings(pattern: Graph, target: Graph,
                        induced: bool = False,
                        max_results: Optional[int] = None
                        ) -> List[Dict[int, int]]:
    """All (or first ``max_results``) embeddings of pattern in target."""
    matcher = SubgraphMatcher(pattern, target, induced=induced)
    return list(matcher.iter_embeddings(max_results=max_results))


def find_embedding(pattern: Graph, target: Graph,
                   induced: bool = False) -> Optional[Dict[int, int]]:
    """First embedding found, or None."""
    matcher = SubgraphMatcher(pattern, target, induced=induced)
    for mapping in matcher.iter_embeddings(max_results=1):
        return mapping
    return None


def is_subgraph(pattern: Graph, target: Graph,
                induced: bool = False) -> bool:
    """True iff the pattern embeds in the target."""
    return find_embedding(pattern, target, induced=induced) is not None


def count_embeddings(pattern: Graph, target: Graph,
                     induced: bool = False,
                     cap: Optional[int] = None) -> int:
    """Number of embeddings, optionally capped at ``cap``."""
    matcher = SubgraphMatcher(pattern, target, induced=induced)
    count = 0
    for _ in matcher.iter_embeddings(max_results=cap):
        count += 1
    return count


def covered_edges(pattern: Graph, target: Graph,
                  max_embeddings: Optional[int] = 200
                  ) -> Set[Tuple[int, int]]:
    """Union of target edges covered by embeddings of the pattern.

    This is the quantity the coverage measures need; it converges
    quickly, so enumeration is capped by default.
    """
    matcher = SubgraphMatcher(pattern, target, induced=False)
    covered: Set[Tuple[int, int]] = set()
    for mapping in matcher.iter_embeddings(max_results=max_embeddings):
        for u, v in pattern.edges():
            a, b = mapping[u], mapping[v]
            covered.add((a, b) if a <= b else (b, a))
        if len(covered) == target.size():
            break
    return covered


def are_isomorphic(g1: Graph, g2: Graph) -> bool:
    """Exact label-preserving graph isomorphism."""
    if g1.order() != g2.order() or g1.size() != g2.size():
        return False
    if sorted(g1.label_multiset().items()) != sorted(
            g2.label_multiset().items()):
        return False
    if g1.degree_sequence() != g2.degree_sequence():
        return False
    return is_subgraph(g1, g2, induced=True)
