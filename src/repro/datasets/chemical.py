"""Synthetic chemical-compound-like graph repositories.

Substitute for PubChem/AIDS-style datasets (see DESIGN.md): molecules
are assembled from a library of recurring motifs (benzene-like
6-rings, 5-rings with a heteroatom, carboxyl-like stars, alkyl
chains) joined by linker edges, so the repository has exactly the
property CATAPULT exploits — a modest number of substructures that
recur across many graphs.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.errors import GraphError
from repro.graph.graph import Graph

#: heavy-atom alphabet (hydrogens omitted, as in most mining datasets)
ATOMS: Sequence[str] = ("C", "N", "O", "S", "P")

#: bond-order edge labels
BONDS: Sequence[str] = ("1", "2")


def benzene_ring(graph: Graph, rng: random.Random) -> List[int]:
    """Append a benzene-like ring (C6, alternating bond labels)."""
    ring = [graph.add_node(label="C") for _ in range(6)]
    for i in range(6):
        graph.add_edge(ring[i], ring[(i + 1) % 6],
                       label=BONDS[i % 2])
    return ring


def hetero_ring(graph: Graph, rng: random.Random) -> List[int]:
    """Append a 5-ring with one heteroatom (N/O/S)."""
    hetero = rng.choice(("N", "O", "S"))
    labels = [hetero] + ["C"] * 4
    ring = [graph.add_node(label=lab) for lab in labels]
    for i in range(5):
        graph.add_edge(ring[i], ring[(i + 1) % 5], label="1")
    return ring


def carboxyl_group(graph: Graph, rng: random.Random) -> List[int]:
    """Append a carboxyl-like star: C with =O and -O."""
    c = graph.add_node(label="C")
    o1 = graph.add_node(label="O")
    o2 = graph.add_node(label="O")
    graph.add_edge(c, o1, label="2")
    graph.add_edge(c, o2, label="1")
    return [c, o1, o2]


def alkyl_chain(graph: Graph, rng: random.Random) -> List[int]:
    """Append a carbon chain of 2-4 atoms."""
    length = rng.randint(2, 4)
    chain = [graph.add_node(label="C") for _ in range(length)]
    for i in range(length - 1):
        graph.add_edge(chain[i], chain[i + 1], label="1")
    return chain


MOTIFS = (benzene_ring, hetero_ring, carboxyl_group, alkyl_chain)


def generate_molecule(rng: random.Random, name: str = "",
                      min_motifs: int = 1, max_motifs: int = 3,
                      motif_weights: Optional[Sequence[float]] = None
                      ) -> Graph:
    """One molecule: 1..k motifs joined by single-bond linkers."""
    if min_motifs < 1 or max_motifs < min_motifs:
        raise GraphError("invalid motif count range")
    graph = Graph(name=name)
    weights = list(motif_weights) if motif_weights else [1.0] * len(MOTIFS)
    if len(weights) != len(MOTIFS):
        raise GraphError(f"motif_weights must have {len(MOTIFS)} entries")
    count = rng.randint(min_motifs, max_motifs)
    anchors: List[int] = []
    for _ in range(count):
        motif = rng.choices(MOTIFS, weights=weights, k=1)[0]
        nodes = motif(graph, rng)
        anchor = rng.choice(nodes)
        if anchors:
            graph.add_edge(rng.choice(anchors), anchor, label="1")
        anchors.append(anchor)
    # sparse decorations: pendant heteroatoms
    for _ in range(rng.randint(0, 2)):
        host = rng.choice(sorted(graph.nodes()))
        pendant = graph.add_node(label=rng.choice(("N", "O")))
        graph.add_edge(host, pendant, label="1")
    return graph


def generate_chemical_repository(size: int, seed: int = 0,
                                 min_motifs: int = 1, max_motifs: int = 3,
                                 motif_weights: Optional[Sequence[float]]
                                 = None) -> List[Graph]:
    """A repository of ``size`` molecule-like graphs.

    Deterministic under ``seed``.  ``motif_weights`` biases the motif
    mix (one weight per motif: benzene, hetero-ring, carboxyl, chain),
    which the evolving-repository generator uses to inject drift.
    """
    if size < 0:
        raise GraphError("repository size must be non-negative")
    rng = random.Random(seed)
    return [generate_molecule(rng, name=f"mol{i}", min_motifs=min_motifs,
                              max_motifs=max_motifs,
                              motif_weights=motif_weights)
            for i in range(size)]
