"""Query workload generation.

Substitute for real query logs (see DESIGN.md): queries are sampled
as connected subgraphs of the data (so every query has at least one
answer) with a topology mix following the published statistics of
large SPARQL logs (chains and stars dominate; cycles, petals, and
flowers form a systematic tail).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.graph.operations import induced_subgraph, is_connected
from repro.patterns.topologies import (
    QUERY_LOG_TOPOLOGY_MIX,
    TopologyClass,
    classify_topology,
)


def sample_connected_subgraph(graph: Graph, size: int, rng: random.Random,
                              attempts: int = 30) -> Optional[Graph]:
    """Random connected induced subgraph with ``size`` nodes, or None.

    Grown by random frontier expansion from a random seed node;
    retried up to ``attempts`` times (a seed may sit in a component
    smaller than ``size``).
    """
    from repro.graph.operations import sample_connected_node_set
    if size < 1:
        raise GraphError("subgraph size must be >= 1")
    node_set = sample_connected_node_set(graph, size, rng,
                                         attempts=attempts)
    if node_set is None:
        return None
    return induced_subgraph(graph, node_set).normalized()


def _longest_path_subgraph(tree: Graph) -> Optional[Graph]:
    """Longest path of a tree via double BFS (an answerable chain)."""
    from collections import deque

    def farthest(start: int):
        parent = {start: None}
        queue = deque([start])
        last = start
        while queue:
            u = queue.popleft()
            last = u
            for v in tree.neighbors(u):
                if v not in parent:
                    parent[v] = u
                    queue.append(v)
        return last, parent

    if tree.order() < 2:
        return None
    a, _ = farthest(next(iter(tree.nodes())))
    b, parent = farthest(a)
    path = [b]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])
    if len(path) < 2:
        return None
    edges = [(path[i], path[i + 1]) for i in range(len(path) - 1)]
    from repro.graph.operations import edge_subgraph
    return edge_subgraph(tree, edges).normalized()


def _thin_to_topology(query: Graph, target: TopologyClass,
                      rng: random.Random) -> Optional[Graph]:
    """Remove edges/nodes from an induced sample to match ``target``.

    Acyclic targets are reached by deleting cycle edges until a tree
    remains, then carving a chain (longest path) or star (max-degree
    node plus neighbors) out of it.  Cyclic classes are kept only if
    the sample already matches — log mixes are tendencies, not
    guarantees.
    """
    work = query.copy()
    for _ in range(3 * work.size()):
        cls = classify_topology(work)
        if cls == target:
            return work
        if not target.is_acyclic():
            return None
        # drop a random cycle edge while keeping connectivity
        droppable = []
        for u, v in list(work.edges()):
            label = work.edge_label(u, v)
            work.remove_edge(u, v)
            if is_connected(work):
                droppable.append((u, v))
            work.add_edge(u, v, label=label)
        if droppable:
            u, v = rng.choice(droppable)
            work.remove_edge(u, v)
            continue
        # ``work`` is now a tree; carve the target shape out of it
        if target == TopologyClass.CHAIN:
            return _longest_path_subgraph(work)
        if target == TopologyClass.STAR:
            hub = max(work.nodes(), key=lambda v: work.degree(v))
            if work.degree(hub) < 3:
                return None
            star = induced_subgraph(
                work, [hub] + list(work.neighbors(hub))).normalized()
            return star if classify_topology(star) == target else None
        return None
    return None


class QueryWorkload:
    """A list of query graphs with workload-level statistics."""

    def __init__(self, queries: List[Graph]) -> None:
        self.queries = queries

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def topology_mix(self) -> Dict[TopologyClass, float]:
        if not self.queries:
            return {}
        counts: Dict[TopologyClass, int] = {}
        for q in self.queries:
            cls = classify_topology(q)
            counts[cls] = counts.get(cls, 0) + 1
        return {cls: c / len(self.queries)
                for cls, c in sorted(counts.items())}

    def mean_size(self) -> float:
        if not self.queries:
            return 0.0
        return sum(q.size() for q in self.queries) / len(self.queries)

    def save(self, path) -> int:
        """Persist the workload (one JSON array of graphs)."""
        from repro.graph.io import write_repository_json
        return write_repository_json(self.queries, path)

    @classmethod
    def load(cls, path) -> "QueryWorkload":
        """Load a workload saved with :meth:`save`."""
        from repro.graph.io import read_repository_json
        return cls(read_repository_json(path))


def generate_workload(data: Sequence[Graph], count: int, seed: int = 0,
                      min_nodes: int = 3, max_nodes: int = 8,
                      mix: Optional[Dict[TopologyClass, float]] = None
                      ) -> QueryWorkload:
    """Sample ``count`` answerable queries from repository graphs.

    Each query is a connected subgraph of some data graph, thinned
    toward a topology class drawn from ``mix`` (default: the real
    query-log mix).  If thinning to the drawn class fails, the raw
    connected sample is used — mirroring how log mixes are tendencies,
    not guarantees.
    """
    if not data:
        raise GraphError("cannot generate a workload from no data")
    rng = random.Random(seed)
    mix = mix or QUERY_LOG_TOPOLOGY_MIX
    classes = list(mix)
    weights = [mix[c] for c in classes]
    queries: List[Graph] = []
    guard = 0
    while len(queries) < count and guard < 50 * count:
        guard += 1
        source = rng.choice(list(data))
        size = rng.randint(min_nodes, min(max_nodes,
                                          max(source.order(), min_nodes)))
        sample = sample_connected_subgraph(source, size, rng)
        if sample is None or sample.size() == 0:
            continue
        target_cls = rng.choices(classes, weights=weights, k=1)[0]
        shaped = _thin_to_topology(sample, target_cls, rng)
        query = shaped if shaped is not None else sample
        query.name = f"q{len(queries)}"
        queries.append(query)
    if len(queries) < count:
        raise GraphError(
            f"could only sample {len(queries)}/{count} queries; "
            "data graphs may be too small")
    return QueryWorkload(queries)


def generate_network_workload(network: Graph, count: int, seed: int = 0,
                              min_nodes: int = 3, max_nodes: int = 8,
                              mix: Optional[Dict[TopologyClass, float]]
                              = None) -> QueryWorkload:
    """Workload over a single large network."""
    return generate_workload([network], count, seed=seed,
                             min_nodes=min_nodes, max_nodes=max_nodes,
                             mix=mix)
