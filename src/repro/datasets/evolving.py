"""Evolving repositories: batched update streams for MIDAS.

Real chemical databases grow by thousands of structures per day and
are maintained in periodic batches (paper §2.1/§2.4).  This module
models a repository plus a stream of :class:`UpdateBatch` objects and
provides a generator whose later batches can *drift* (new motif mix),
which is what flips MIDAS from minor- to major-modification handling.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import MaintenanceError
from repro.graph.graph import Graph
from repro.datasets.chemical import generate_molecule


class UpdateBatch:
    """One batch of repository updates.

    Parameters
    ----------
    added:
        New data graphs (names must be unique within the repository).
    removed:
        Names of existing graphs to delete.
    """

    __slots__ = ("added", "removed")

    def __init__(self, added: Sequence[Graph] = (),
                 removed: Sequence[str] = ()) -> None:
        self.added: List[Graph] = list(added)
        self.removed: List[str] = list(removed)

    def is_empty(self) -> bool:
        return not self.added and not self.removed

    def __repr__(self) -> str:
        return f"<UpdateBatch +{len(self.added)} -{len(self.removed)}>"


class EvolvingRepository:
    """A name-indexed repository that applies batches in order."""

    def __init__(self, initial: Sequence[Graph]) -> None:
        self._graphs: Dict[str, Graph] = {}
        for graph in initial:
            if not graph.name:
                raise MaintenanceError("repository graphs need names")
            if graph.name in self._graphs:
                raise MaintenanceError(
                    f"duplicate graph name {graph.name!r}")
            self._graphs[graph.name] = graph
        self.applied_batches = 0

    def graphs(self) -> List[Graph]:
        """Current contents, in insertion order."""
        return list(self._graphs.values())

    def __len__(self) -> int:
        return len(self._graphs)

    def __contains__(self, name: str) -> bool:
        return name in self._graphs

    def apply(self, batch: UpdateBatch) -> None:
        """Apply one batch; validates names before mutating."""
        for name in batch.removed:
            if name not in self._graphs:
                raise MaintenanceError(
                    f"cannot remove unknown graph {name!r}")
        for graph in batch.added:
            if not graph.name:
                raise MaintenanceError("added graphs need names")
            if graph.name in self._graphs:
                raise MaintenanceError(
                    f"graph {graph.name!r} already present")
        for name in batch.removed:
            del self._graphs[name]
        for graph in batch.added:
            self._graphs[graph.name] = graph
        self.applied_batches += 1


def generate_update_stream(repository: EvolvingRepository,
                           batches: int, batch_size: int, seed: int = 0,
                           removal_fraction: float = 0.2,
                           drift_after: Optional[int] = None,
                           drift_weights: Sequence[float] = (0.1, 0.1,
                                                             0.1, 3.0)
                           ) -> Iterator[UpdateBatch]:
    """Yield ``batches`` update batches for ``repository``.

    Until ``drift_after`` (batch index, None = never), additions are
    drawn from the same motif mix as the original generator (a *minor*
    modification for MIDAS); afterwards the mix switches to
    ``drift_weights`` (default: chain-heavy), creating the structural
    drift of a *major* modification.

    Batches must be applied in order (the generator tracks names it
    has already scheduled for removal).
    """
    rng = random.Random(seed)
    serial = 0
    scheduled_removals: set[str] = set()
    for index in range(batches):
        weights = None
        if drift_after is not None and index >= drift_after:
            weights = list(drift_weights)
        added = []
        for _ in range(batch_size):
            name = f"upd{seed}_{serial}"
            serial += 1
            added.append(generate_molecule(rng, name=name,
                                           motif_weights=weights))
        removable = [name for name in
                     (g.name for g in repository.graphs())
                     if name not in scheduled_removals]
        removal_count = min(int(batch_size * removal_fraction),
                            max(len(removable) - 1, 0))
        removed = rng.sample(removable, removal_count) \
            if removal_count > 0 else []
        scheduled_removals.update(removed)
        yield UpdateBatch(added=added, removed=removed)
