"""Synthetic datasets: chemical repositories, networks, workloads,
and evolving update streams (paper-data substitutes per DESIGN.md)."""

from repro.datasets.chemical import (
    ATOMS,
    BONDS,
    generate_chemical_repository,
    generate_molecule,
)
from repro.datasets.evolving import (
    EvolvingRepository,
    UpdateBatch,
    generate_update_stream,
)
from repro.datasets.networks import (
    ENTITY_LABELS,
    NetworkConfig,
    generate_network,
    label_distribution,
)
from repro.datasets.workloads import (
    QueryWorkload,
    generate_network_workload,
    generate_workload,
    sample_connected_subgraph,
)

__all__ = [
    "ATOMS",
    "BONDS",
    "generate_chemical_repository",
    "generate_molecule",
    "EvolvingRepository",
    "UpdateBatch",
    "generate_update_stream",
    "ENTITY_LABELS",
    "NetworkConfig",
    "generate_network",
    "label_distribution",
    "QueryWorkload",
    "generate_network_workload",
    "generate_workload",
    "sample_connected_subgraph",
]
