"""Synthetic large networks with planted query-log topologies.

Substitute for DBLP/Twitter-scale networks (see DESIGN.md): a
preferential-attachment backbone provides the heavy-tailed degree
distribution, and cliques / petals / flowers / stars are planted on
top so the truss-infested and truss-oblivious regions TATTOO
decomposes both exist and contain extractable candidates.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

from repro.errors import GraphError
from repro.graph.generators import barabasi_albert_graph
from repro.graph.graph import Graph

#: entity-type alphabet for network node labels
ENTITY_LABELS: Sequence[str] = ("person", "org", "paper", "topic", "venue")


class NetworkConfig:
    """Parameters of the planted-structure network generator."""

    __slots__ = ("nodes", "attachment", "cliques", "clique_size",
                 "petals", "flowers", "labels")

    def __init__(self, nodes: int = 2000, attachment: int = 2,
                 cliques: int = 20, clique_size: int = 5,
                 petals: int = 15, flowers: int = 10,
                 labels: Sequence[str] = ENTITY_LABELS) -> None:
        if nodes < 10:
            raise GraphError("network must have at least 10 nodes")
        if clique_size < 3:
            raise GraphError("planted cliques need size >= 3")
        self.nodes = nodes
        self.attachment = attachment
        self.cliques = cliques
        self.clique_size = clique_size
        self.petals = petals
        self.flowers = flowers
        self.labels = tuple(labels)


def _plant_clique(graph: Graph, rng: random.Random, size: int) -> None:
    members = rng.sample(sorted(graph.nodes()), size)
    for i, u in enumerate(members):
        for v in members[i + 1:]:
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)


def _plant_petal(graph: Graph, rng: random.Random) -> None:
    """Two anchors joined by 2-3 internally disjoint 2-edge paths."""
    nodes = sorted(graph.nodes())
    a, b = rng.sample(nodes, 2)
    for _ in range(rng.randint(2, 3)):
        mid = rng.choice(nodes)
        if mid in (a, b):
            continue
        if not graph.has_edge(a, mid):
            graph.add_edge(a, mid)
        if not graph.has_edge(mid, b):
            graph.add_edge(mid, b)


def _plant_flower(graph: Graph, rng: random.Random) -> None:
    """Triangle petals sharing one hub."""
    nodes = sorted(graph.nodes())
    hub = rng.choice(nodes)
    for _ in range(rng.randint(2, 3)):
        pair = rng.sample(nodes, 2)
        if hub in pair:
            continue
        u, v = pair
        for x, y in ((hub, u), (hub, v), (u, v)):
            if not graph.has_edge(x, y):
                graph.add_edge(x, y)


def generate_network(config: Optional[NetworkConfig] = None,
                     seed: int = 0) -> Graph:
    """Generate one large labeled network per ``config``."""
    config = config or NetworkConfig()
    rng = random.Random(seed)
    graph = barabasi_albert_graph(config.nodes, config.attachment, rng,
                                  labels=config.labels)
    graph.name = f"network_{config.nodes}"
    for _ in range(config.cliques):
        _plant_clique(graph, rng, config.clique_size)
    for _ in range(config.petals):
        _plant_petal(graph, rng)
    for _ in range(config.flowers):
        _plant_flower(graph, rng)
    return graph


def label_distribution(graph: Graph) -> Dict[str, float]:
    """Node-label shares of a network (for the Attribute Panel)."""
    counts = graph.label_multiset()
    total = sum(counts.values())
    if total == 0:
        return {}
    return {label: count / total for label, count in sorted(counts.items())}
