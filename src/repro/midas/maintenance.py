"""MIDAS: maintenance of canned patterns under batch updates
(Huang et al., SIGMOD 2021).

Built on top of CATAPULT state (clusters, CSGs, pattern set), MIDAS
processes an :class:`repro.datasets.UpdateBatch` as follows:

1. assign added graphs to existing clusters, drop removed graphs;
2. update the (incrementally maintained) graphlet frequency
   distribution and measure its Euclidean drift;
3. maintain the FCT vocabulary incrementally (per touched graph);
4. rebuild the CSGs of modified clusters only;
5. if the drift is below the threshold the modification is *minor* —
   the pattern set is untouched; otherwise it is *major* — candidates
   are walked out of the modified CSGs and merged into the pattern
   set with multi-scan swapping, which never lowers the set score.
"""

from __future__ import annotations

import random
import time
import warnings
from typing import Dict, List, Optional, Sequence, Set

from repro.catapult.random_walk import generate_candidates
from repro.clustering.features import feature_vector_from_vocabulary
from repro.clustering.kmedoids import kmedoids
from repro.clustering.similarity import (
    distance_matrix_from_vectors,
    vector_euclidean,
)
from repro.datasets.evolving import UpdateBatch
from repro.errors import MaintenanceError, PipelineError
from repro.graph.graph import Graph
from repro.graphlets.counting import GRAPHLET_KEYS, count_graphlets, gfd_distance
from repro.matching.isomorphism import is_subgraph
from repro.midas.fct import FCTIndex
from repro.midas.swapping import SwapStats, multi_scan_swap
from repro.obs import capture, metrics, span
from repro.patterns.base import Pattern, PatternBudget, PatternSet
from repro.patterns.index import CoverageIndex
from repro.patterns.scoring import DEFAULT_WEIGHTS, ScoreWeights
from repro.patterns.selection import SetScorer, greedy_select
from repro.perf.cache import MatchCache
from repro.summary.closure import SummaryGraph, build_summary
from repro.catapult.pipeline import default_cluster_count


class MidasConfig:
    """Tunables of the MIDAS maintenance engine.

    ``workers`` parallelises the clustering distance matrix;
    ``use_cache`` keeps one :class:`repro.perf.MatchCache` alive for
    the lifetime of the engine, so coverage answers survive across
    swap scans *and* across batches (each batch builds a fresh
    coverage index, but most (pattern, graph) pairs repeat).
    ``trace`` captures a :mod:`repro.obs` trace of initialisation and
    every batch even when ``REPRO_TRACE`` is unset.
    """

    __slots__ = ("drift_threshold", "min_tree_support", "max_tree_edges",
                 "walks_per_cluster", "coverage_sample", "max_embeddings",
                 "max_scans", "prune", "seed", "weights", "clusters",
                 "workers", "use_cache", "trace")

    def __init__(self, drift_threshold: float = 0.015,
                 min_tree_support: int = 2, max_tree_edges: int = 3,
                 walks_per_cluster: int = 40, coverage_sample: int = 50,
                 max_embeddings: int = 30, max_scans: int = 3,
                 prune: bool = True, seed: int = 0,
                 weights: ScoreWeights = DEFAULT_WEIGHTS,
                 clusters: Optional[int] = None,
                 workers: Optional[int] = None,
                 use_cache: bool = True,
                 trace: bool = False) -> None:
        self.drift_threshold = drift_threshold
        self.min_tree_support = min_tree_support
        self.max_tree_edges = max_tree_edges
        self.walks_per_cluster = walks_per_cluster
        self.coverage_sample = coverage_sample
        self.max_embeddings = max_embeddings
        self.max_scans = max_scans
        self.prune = prune
        self.seed = seed
        self.weights = weights
        self.clusters = clusters
        self.workers = workers
        self.use_cache = use_cache
        self.trace = trace

    @classmethod
    def from_pipeline(cls, pipeline) -> "MidasConfig":
        """Translate a :class:`repro.core.pipeline.PipelineConfig`:
        shared fields map 1:1 and MIDAS-specific knobs come from
        ``pipeline.options`` (unknown option names raise)."""
        kwargs = dict(pipeline.options)
        unknown = sorted(set(kwargs) - set(cls.__slots__))
        if unknown:
            raise PipelineError(
                "unknown MIDAS option(s): " + ", ".join(unknown))
        for name in ("seed", "workers", "use_cache", "weights",
                     "max_embeddings", "trace"):
            kwargs.setdefault(name, getattr(pipeline, name))
        return cls(**kwargs)


class MaintenanceReport:
    """Outcome of applying one batch.

    ``trace`` is the batch's :mod:`repro.obs` span record (``None``
    unless tracing was on); ``stats`` flattens the report for the
    shared result shape.
    """

    __slots__ = ("batch_index", "kind", "drift", "added", "removed",
                 "modified_clusters", "swap_stats", "duration",
                 "score_before", "score_after", "trace")

    def __init__(self, batch_index: int, kind: str, drift: float,
                 added: int, removed: int, modified_clusters: int,
                 swap_stats: Optional[SwapStats], duration: float,
                 score_before: float, score_after: float,
                 trace: Optional[Dict[str, object]] = None) -> None:
        self.batch_index = batch_index
        self.kind = kind
        self.drift = drift
        self.added = added
        self.removed = removed
        self.modified_clusters = modified_clusters
        self.swap_stats = swap_stats
        self.duration = duration
        self.score_before = score_before
        self.score_after = score_after
        self.trace = trace

    @property
    def stats(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "pipeline": "midas",
            "batch": self.batch_index,
            "kind": self.kind,
            "drift": self.drift,
            "added": self.added,
            "removed": self.removed,
            "modified_clusters": self.modified_clusters,
            "duration": self.duration,
            "score_before": self.score_before,
            "score_after": self.score_after,
        }
        if self.swap_stats is not None:
            data["swap"] = {
                "scans": self.swap_stats.scans,
                "swaps": self.swap_stats.swaps,
                "considered": self.swap_stats.considered,
                "pruned": self.swap_stats.pruned,
            }
        return data

    def __repr__(self) -> str:
        return (f"<MaintenanceReport #{self.batch_index} {self.kind} "
                f"drift={self.drift:.4f} "
                f"score {self.score_before:.3f}->{self.score_after:.3f}>")


class Midas:
    """Stateful pattern-set maintainer for an evolving repository.

    New-style construction passes a single :class:`repro.core.
    pipeline.PipelineConfig` as the second argument (or uses
    :func:`repro.core.pipeline.run_midas`); the legacy
    ``Midas(repository, budget, MidasConfig)`` signature still works
    but emits a ``DeprecationWarning``.  Satisfies the
    :class:`repro.core.pipeline.PipelineResult` protocol
    (``.patterns`` / ``.stats`` / ``.trace``).
    """

    def __init__(self, repository: Sequence[Graph], budget=None,
                 config: Optional[MidasConfig] = None) -> None:
        from repro.core.pipeline import PipelineConfig

        if isinstance(budget, PipelineConfig):
            if config is not None:
                raise PipelineError(
                    "pass MIDAS options inside PipelineConfig.options, "
                    "not as a separate MidasConfig")
            self._setup(repository, budget.require_budget(),
                        MidasConfig.from_pipeline(budget))
            return
        warnings.warn(
            "Midas(repository, budget, MidasConfig) is deprecated; "
            "pass a repro.core.pipeline.PipelineConfig instead (or "
            "call repro.core.pipeline.run_midas)",
            DeprecationWarning, stacklevel=2)
        if budget is None:
            raise PipelineError("MIDAS needs a PatternBudget")
        self._setup(repository, budget, config or MidasConfig())

    @classmethod
    def _from_parts(cls, repository: Sequence[Graph],
                    budget: PatternBudget,
                    config: Optional[MidasConfig] = None) -> "Midas":
        """Internal non-warning constructor for in-library callers."""
        self = cls.__new__(cls)
        self._setup(repository, budget, config or MidasConfig())
        return self

    def _setup(self, repository: Sequence[Graph], budget: PatternBudget,
               config: MidasConfig) -> None:
        if not repository:
            raise PipelineError("MIDAS needs a non-empty repository")
        self.config = config
        self.budget = budget
        self._graphs: Dict[str, Graph] = {}
        for graph in repository:
            if not graph.name:
                raise MaintenanceError("repository graphs need names")
            if graph.name in self._graphs:
                raise MaintenanceError(
                    f"duplicate graph name {graph.name!r}")
            self._graphs[graph.name] = graph
        self._rng = random.Random(self.config.seed)
        self._batch_index = 0
        # engine-lifetime match cache: coverage answers persist across
        # swap scans and batches (None when caching is disabled)
        self._match_cache: Optional[MatchCache] = \
            MatchCache() if self.config.use_cache else None
        # incrementally maintained state
        self.fct = FCTIndex(min_support=self.config.min_tree_support,
                            max_edges=self.config.max_tree_edges)
        self._graphlet_counts: Dict[str, Dict[str, int]] = {}
        self._pooled_graphlets: Dict[str, int] = {
            key: 0 for key in GRAPHLET_KEYS}
        self.membership: Dict[str, int] = {}
        self.summaries: Dict[int, SummaryGraph] = {}
        self.patterns: PatternSet = PatternSet()
        self._initialize()

    # ------------------------------------------------------------------
    # initialisation (CATAPULT with the FCT vocabulary)
    # ------------------------------------------------------------------
    def graphs(self) -> List[Graph]:
        return list(self._graphs.values())

    def _account_graphlets(self, graph: Graph, sign: int) -> None:
        counts = self._graphlet_counts.get(graph.name)
        if counts is None:
            counts = count_graphlets(graph)
            self._graphlet_counts[graph.name] = counts
        for key, value in counts.items():
            self._pooled_graphlets[key] += sign * value
        if sign < 0:
            self._graphlet_counts.pop(graph.name, None)

    def gfd(self) -> Dict[str, float]:
        """Current pooled graphlet frequency distribution."""
        total = sum(self._pooled_graphlets.values())
        if total == 0:
            return {key: 0.0 for key in GRAPHLET_KEYS}
        return {key: value / total
                for key, value in self._pooled_graphlets.items()}

    def _feature_of(self, graph: Graph) -> List[float]:
        return feature_vector_from_vocabulary(
            graph, self._vocabulary, self.config.max_tree_edges)

    def _initialize(self) -> None:
        with capture("midas.initialize", force=self.config.trace,
                     graphs=len(self._graphs)) as run:
            graphs = self.graphs()
            with span("midas.fct") as stage:
                self.fct.build(graphs)
                for graph in graphs:
                    self._account_graphlets(graph, +1)
                self._gfd = self.gfd()
                self._vocabulary = self.fct.frequent_closed()
                stage.add("vocabulary", len(self._vocabulary))
            with span("midas.cluster") as stage:
                k = self.config.clusters \
                    or default_cluster_count(len(graphs))
                if self._vocabulary:
                    matrix = [self._feature_of(g) for g in graphs]
                    distances = distance_matrix_from_vectors(
                        matrix, "euclidean",
                        workers=self.config.workers)
                    clustering = kmedoids(distances, k,
                                          seed=self.config.seed)
                    labels = clustering.labels
                else:
                    labels = [0] * len(graphs)
                for graph, label in zip(graphs, labels):
                    self.membership[graph.name] = label
                self._centroids = self._compute_centroids()
                stage.add("clusters",
                          len(set(self.membership.values())))
            with span("midas.summaries") as stage:
                self._rebuild_summaries(set(self.membership.values()))
                stage.add("summaries", len(self.summaries))
            with span("midas.candidates") as stage:
                candidates = self._walk_candidates(set(self.summaries))
                stage.add("candidates", len(candidates))
            with span("midas.select"):
                scorer = self._make_scorer()
                selection = greedy_select(candidates, self.budget,
                                          scorer)
            self.patterns = selection.patterns
            self.last_score = selection.score
        self.trace = run.record
        self._publish_cache_gauges()

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _cluster_members(self, cluster: int) -> List[Graph]:
        return [self._graphs[name]
                for name, label in self.membership.items()
                if label == cluster]

    def _rebuild_summaries(self, clusters: Set[int]) -> None:
        for cluster in clusters:
            members = self._cluster_members(cluster)
            if members:
                self.summaries[cluster] = build_summary(members)
            else:
                self.summaries.pop(cluster, None)

    def _compute_centroids(self) -> Dict[int, List[float]]:
        centroids: Dict[int, List[float]] = {}
        if not self._vocabulary:
            return centroids
        sums: Dict[int, List[float]] = {}
        counts: Dict[int, int] = {}
        for name, label in self.membership.items():
            vector = self._feature_of(self._graphs[name])
            if label not in sums:
                sums[label] = [0.0] * len(vector)
                counts[label] = 0
            sums[label] = [a + b for a, b in zip(sums[label], vector)]
            counts[label] += 1
        for label, total in sums.items():
            centroids[label] = [value / counts[label] for value in total]
        return centroids

    def _nearest_cluster(self, graph: Graph) -> int:
        if not self._centroids:
            return next(iter(self.summaries), 0)
        vector = self._feature_of(graph)
        return min(self._centroids,
                   key=lambda c: vector_euclidean(vector,
                                                  self._centroids[c]))

    def _walk_candidates(self, clusters: Set[int]) -> List[Pattern]:
        candidates: List[Pattern] = []
        seen: Set[str] = set()
        for cluster in sorted(clusters):
            summary = self.summaries.get(cluster)
            if summary is None:
                continue
            members = self._cluster_members(cluster)[:8]

            def validator(candidate: Graph,
                          probe: List[Graph] = members) -> bool:
                return any(is_subgraph(candidate, m) for m in probe)

            for pattern in generate_candidates(
                    summary, self.budget, self.config.walks_per_cluster,
                    self._rng, source=f"midas:cluster{cluster}",
                    validator=validator):
                if pattern.code not in seen:
                    seen.add(pattern.code)
                    candidates.append(pattern)
        return candidates

    def _make_scorer(self) -> SetScorer:
        graphs = self.graphs()
        sample = graphs
        if len(sample) > self.config.coverage_sample:
            sample = self._rng.sample(graphs, self.config.coverage_sample)
        index = CoverageIndex(sample,
                              max_embeddings=self.config.max_embeddings,
                              size_utility=True,
                              cache=self._match_cache,
                              use_cache=self.config.use_cache)
        return SetScorer(index, weights=self.config.weights)

    def cache_stats(self) -> Optional[Dict[str, float]]:
        """Hit/miss counters of the engine's match cache (None if off).

        Deprecated entry point: the same counters are published as
        ``midas.cache.*`` gauges in :func:`repro.obs.snapshot` after
        initialisation and after every batch.
        """
        if self._match_cache is None:
            return None
        return self._match_cache.stats()

    def _publish_cache_gauges(self) -> None:
        stats = self.cache_stats()
        if stats is None:
            return
        for key, value in stats.items():
            metrics.set_gauge(f"midas.cache.{key}", value)

    @property
    def stats(self) -> Dict[str, object]:
        """Flat engine statistics in the shared PipelineResult shape."""
        data: Dict[str, object] = {
            "pipeline": "midas",
            "patterns": len(self.patterns),
            "graphs": len(self._graphs),
            "batches": self._batch_index,
            "score": self.last_score,
        }
        cache = self.cache_stats()
        if cache is not None:
            data["cache"] = cache
        return data

    # ------------------------------------------------------------------
    # batch application
    # ------------------------------------------------------------------
    def apply_batch(self, batch: UpdateBatch) -> MaintenanceReport:
        """Apply one update batch and maintain the pattern set."""
        start = time.perf_counter()
        self._batch_index += 1
        modified: Set[int] = set()
        stats: Optional[SwapStats] = None

        with capture("midas.apply_batch", force=self.config.trace,
                     batch=self._batch_index) as run:
            with span("midas.update") as stage:
                for name in batch.removed:
                    graph = self._graphs.pop(name, None)
                    if graph is None:
                        raise MaintenanceError(
                            f"cannot remove unknown graph {name!r}")
                    self.fct.remove_graph(graph)
                    self._account_graphlets(graph, -1)
                    modified.add(self.membership.pop(name))
                for graph in batch.added:
                    if not graph.name or graph.name in self._graphs:
                        raise MaintenanceError(
                            "added graph needs a fresh name "
                            f"({graph.name!r})")
                    self._graphs[graph.name] = graph
                    self.fct.add_graph(graph)
                    self._account_graphlets(graph, +1)
                    cluster = self._nearest_cluster(graph)
                    self.membership[graph.name] = cluster
                    modified.add(cluster)
                stage.add("added", len(batch.added))
                stage.add("removed", len(batch.removed))

            # drift accumulates since the last time patterns were
            # (re)selected; minor batches do not reset the baseline
            drift = gfd_distance(self._gfd, self.gfd())
            with span("midas.summaries") as stage:
                self._rebuild_summaries(modified)
                stage.add("modified", len(modified))

            with span("midas.score"):
                scorer = self._make_scorer()
                score_before = scorer.score(list(self.patterns))

            if drift < self.config.drift_threshold:
                kind = "minor"
                score_after = score_before
                run.add("kind", kind)
            else:
                # major modification: refresh vocabulary + centroids,
                # then swap
                kind = "major"
                run.add("kind", kind)
                with span("midas.refresh"):
                    self._gfd = self.gfd()
                    self._vocabulary = self.fct.frequent_closed()
                    self._centroids = self._compute_centroids()
                with span("midas.candidates") as stage:
                    candidates = self._walk_candidates(modified)
                    stage.add("candidates", len(candidates))
                with span("midas.swap"):
                    swapped, stats = multi_scan_swap(
                        list(self.patterns), candidates, scorer,
                        max_scans=self.config.max_scans,
                        prune=self.config.prune)
                    patterns = PatternSet(swapped)
                    # fill the budget if the set is short of it
                    if len(patterns) < self.budget.max_patterns:
                        selection = greedy_select(
                            candidates, self.budget, scorer,
                            seed_patterns=list(patterns))
                        patterns = selection.patterns
                self.patterns = patterns
                score_after = scorer.score(list(patterns))
                self.last_score = score_after

        metrics.inc("midas.batches")
        metrics.inc(f"midas.batches.{kind}")
        self._publish_cache_gauges()
        duration = time.perf_counter() - start
        return MaintenanceReport(
            self._batch_index, kind, drift,
            added=len(batch.added), removed=len(batch.removed),
            modified_clusters=len(modified), swap_stats=stats,
            duration=duration, score_before=score_before,
            score_after=score_after, trace=run.record)
