"""MIDAS: maintenance of canned patterns under batch updates
(Huang et al., SIGMOD 2021).

Built on top of CATAPULT state (clusters, CSGs, pattern set), MIDAS
processes an :class:`repro.datasets.UpdateBatch` as follows:

1. assign added graphs to existing clusters, drop removed graphs;
2. update the (incrementally maintained) graphlet frequency
   distribution and measure its Euclidean drift;
3. maintain the FCT vocabulary incrementally (per touched graph);
4. rebuild the CSGs of modified clusters only;
5. if the drift is below the threshold the modification is *minor* —
   the pattern set is untouched; otherwise it is *major* — candidates
   are walked out of the modified CSGs and merged into the pattern
   set with multi-scan swapping, which never lowers the set score.
"""

from __future__ import annotations

import random
import time
import warnings
from typing import Dict, List, Optional, Sequence, Set

from repro.catapult.random_walk import generate_candidates
from repro.clustering.features import feature_vector_from_vocabulary
from repro.clustering.kmedoids import kmedoids
from repro.clustering.similarity import (
    distance_matrix_from_vectors,
    vector_euclidean,
)
from repro.datasets.evolving import UpdateBatch
from repro.errors import MaintenanceError, PipelineError, WorkerFailure
from repro.graph.graph import Graph
from repro.graphlets.counting import GRAPHLET_KEYS, count_graphlets, gfd_distance
from repro.midas.fct import FCTIndex
from repro.midas.swapping import SwapStats, multi_scan_swap
from repro.obs import capture, metrics, span
from repro.patterns.base import Pattern, PatternBudget, PatternSet
from repro.patterns.index import CoverageIndex
from repro.patterns.scoring import DEFAULT_WEIGHTS, ScoreWeights
from repro.patterns.selection import SetScorer, greedy_select
from repro.perf.cache import MatchCache, cached_is_subgraph
from repro.resilience.deadline import CompletionReport, Deadline
from repro.summary.closure import SummaryGraph, build_summary
from repro.catapult.pipeline import default_cluster_count


class MidasConfig:
    """Tunables of the MIDAS maintenance engine.

    ``workers`` parallelises the clustering distance matrix;
    ``use_cache`` keeps one :class:`repro.perf.MatchCache` alive for
    the lifetime of the engine, so coverage answers survive across
    swap scans *and* across batches (each batch builds a fresh
    coverage index, but most (pattern, graph) pairs repeat).  With
    ``workers`` > 1 that engine cache also rides into the coverage
    pool: workers are seeded with its hottest entries and their
    access deltas merge back in input order, so the engine cache
    stays the single source of truth at every worker count.
    ``trace`` captures a :mod:`repro.obs` trace of initialisation and
    every batch even when ``REPRO_TRACE`` is unset.
    """

    __slots__ = ("drift_threshold", "min_tree_support", "max_tree_edges",
                 "walks_per_cluster", "coverage_sample", "max_embeddings",
                 "max_scans", "prune", "seed", "weights", "clusters",
                 "workers", "use_cache", "trace", "deadline_s",
                 "max_retries")

    def __init__(self, drift_threshold: float = 0.015,
                 min_tree_support: int = 2, max_tree_edges: int = 3,
                 walks_per_cluster: int = 40, coverage_sample: int = 50,
                 max_embeddings: int = 30, max_scans: int = 3,
                 prune: bool = True, seed: int = 0,
                 weights: ScoreWeights = DEFAULT_WEIGHTS,
                 clusters: Optional[int] = None,
                 workers: Optional[int] = None,
                 use_cache: bool = True,
                 trace: bool = False,
                 deadline_s: Optional[float] = None,
                 max_retries: int = 0) -> None:
        self.drift_threshold = drift_threshold
        self.min_tree_support = min_tree_support
        self.max_tree_edges = max_tree_edges
        self.walks_per_cluster = walks_per_cluster
        self.coverage_sample = coverage_sample
        self.max_embeddings = max_embeddings
        self.max_scans = max_scans
        self.prune = prune
        self.seed = seed
        self.weights = weights
        self.clusters = clusters
        self.workers = workers
        self.use_cache = use_cache
        self.trace = trace
        self.deadline_s = deadline_s
        self.max_retries = max_retries

    @classmethod
    def from_pipeline(cls, pipeline) -> "MidasConfig":
        """Translate a :class:`repro.core.pipeline.PipelineConfig`:
        shared fields map 1:1 and MIDAS-specific knobs come from
        ``pipeline.options`` (unknown option names raise)."""
        kwargs = dict(pipeline.options)
        unknown = sorted(set(kwargs) - set(cls.__slots__))
        if unknown:
            raise PipelineError(
                "unknown MIDAS option(s): " + ", ".join(unknown))
        for name in ("seed", "workers", "use_cache", "weights",
                     "max_embeddings", "trace", "deadline_s",
                     "max_retries"):
            kwargs.setdefault(name, getattr(pipeline, name))
        return cls(**kwargs)


class QuarantinedOp:
    """One batch operation refused by validation (never applied)."""

    __slots__ = ("op", "name", "reason")

    def __init__(self, op: str, name: str, reason: str) -> None:
        self.op = op
        self.name = name
        self.reason = reason

    def as_dict(self) -> Dict[str, str]:
        return {"op": self.op, "name": self.name, "reason": self.reason}

    def __repr__(self) -> str:
        return f"<QuarantinedOp {self.op} {self.name!r}: {self.reason}>"


class MaintenanceReport:
    """Outcome of applying one batch.

    ``trace`` is the batch's :mod:`repro.obs` span record (``None``
    unless tracing was on); ``stats`` flattens the report for the
    shared result shape.  ``quarantine`` lists batch operations that
    failed validation and were skipped — the valid remainder of the
    batch is still applied, so one malformed op can no longer corrupt
    (or abort) engine state.  ``degraded`` is True when anything was
    quarantined or a maintenance stage stopped short.
    """

    __slots__ = ("batch_index", "kind", "drift", "added", "removed",
                 "modified_clusters", "swap_stats", "duration",
                 "score_before", "score_after", "trace", "quarantine",
                 "completion")

    def __init__(self, batch_index: int, kind: str, drift: float,
                 added: int, removed: int, modified_clusters: int,
                 swap_stats: Optional[SwapStats], duration: float,
                 score_before: float, score_after: float,
                 trace: Optional[Dict[str, object]] = None,
                 quarantine: Optional[List[QuarantinedOp]] = None,
                 completion: Optional[CompletionReport] = None) -> None:
        self.batch_index = batch_index
        self.kind = kind
        self.drift = drift
        self.added = added
        self.removed = removed
        self.modified_clusters = modified_clusters
        self.swap_stats = swap_stats
        self.duration = duration
        self.score_before = score_before
        self.score_after = score_after
        self.trace = trace
        self.quarantine = list(quarantine or [])
        self.completion = completion or CompletionReport()

    @property
    def degraded(self) -> bool:
        return bool(self.quarantine) or self.completion.degraded

    @property
    def stats(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "pipeline": "midas",
            "batch": self.batch_index,
            "kind": self.kind,
            "drift": self.drift,
            "added": self.added,
            "removed": self.removed,
            "modified_clusters": self.modified_clusters,
            "duration": self.duration,
            "score_before": self.score_before,
            "score_after": self.score_after,
            "degraded": self.degraded,
            "completion": self.completion.as_dict(),
        }
        if self.quarantine:
            data["quarantined"] = [op.as_dict()
                                   for op in self.quarantine]
        if self.swap_stats is not None:
            data["swap"] = {
                "scans": self.swap_stats.scans,
                "swaps": self.swap_stats.swaps,
                "considered": self.swap_stats.considered,
                "pruned": self.swap_stats.pruned,
            }
        return data

    def __repr__(self) -> str:
        flags = ""
        if self.quarantine:
            flags = f" quarantined={len(self.quarantine)}"
        return (f"<MaintenanceReport #{self.batch_index} {self.kind} "
                f"drift={self.drift:.4f} "
                f"score {self.score_before:.3f}->{self.score_after:.3f}"
                f"{flags}>")


class Midas:
    """Stateful pattern-set maintainer for an evolving repository.

    New-style construction passes a single :class:`repro.core.
    pipeline.PipelineConfig` as the second argument (or uses
    :func:`repro.core.pipeline.run_midas`); the legacy
    ``Midas(repository, budget, MidasConfig)`` signature still works
    but emits a ``DeprecationWarning``.  Satisfies the
    :class:`repro.core.pipeline.PipelineResult` protocol
    (``.patterns`` / ``.stats`` / ``.trace``).
    """

    def __init__(self, repository: Sequence[Graph], budget=None,
                 config: Optional[MidasConfig] = None) -> None:
        from repro.core.pipeline import PipelineConfig

        if isinstance(budget, PipelineConfig):
            if config is not None:
                raise PipelineError(
                    "pass MIDAS options inside PipelineConfig.options, "
                    "not as a separate MidasConfig")
            self._setup(repository, budget.require_budget(),
                        MidasConfig.from_pipeline(budget))
            return
        warnings.warn(
            "Midas(repository, budget, MidasConfig) is deprecated; "
            "pass a repro.core.pipeline.PipelineConfig instead (or "
            "call repro.core.pipeline.run_midas)",
            DeprecationWarning, stacklevel=2)
        if budget is None:
            raise PipelineError("MIDAS needs a PatternBudget")
        self._setup(repository, budget, config or MidasConfig())

    @classmethod
    def _from_parts(cls, repository: Sequence[Graph],
                    budget: PatternBudget,
                    config: Optional[MidasConfig] = None) -> "Midas":
        """Internal non-warning constructor for in-library callers."""
        self = cls.__new__(cls)
        self._setup(repository, budget, config or MidasConfig())
        return self

    def _setup(self, repository: Sequence[Graph], budget: PatternBudget,
               config: MidasConfig) -> None:
        if not repository:
            raise PipelineError("MIDAS needs a non-empty repository")
        self.config = config
        self.budget = budget
        self._graphs: Dict[str, Graph] = {}
        for graph in repository:
            if not graph.name:
                raise MaintenanceError("repository graphs need names")
            if graph.name in self._graphs:
                raise MaintenanceError(
                    f"duplicate graph name {graph.name!r}")
            self._graphs[graph.name] = graph
        self._rng = random.Random(self.config.seed)
        self._batch_index = 0
        # engine-lifetime match cache: coverage answers persist across
        # swap scans and batches (None when caching is disabled)
        self._match_cache: Optional[MatchCache] = \
            MatchCache() if self.config.use_cache else None
        # incrementally maintained state
        self.fct = FCTIndex(min_support=self.config.min_tree_support,
                            max_edges=self.config.max_tree_edges)
        self._graphlet_counts: Dict[str, Dict[str, int]] = {}
        self._pooled_graphlets: Dict[str, int] = {
            key: 0 for key in GRAPHLET_KEYS}
        self.membership: Dict[str, int] = {}
        self.summaries: Dict[int, SummaryGraph] = {}
        self.patterns: PatternSet = PatternSet()
        self._initialize()

    # ------------------------------------------------------------------
    # initialisation (CATAPULT with the FCT vocabulary)
    # ------------------------------------------------------------------
    def graphs(self) -> List[Graph]:
        return list(self._graphs.values())

    def _account_graphlets(self, graph: Graph, sign: int) -> None:
        counts = self._graphlet_counts.get(graph.name)
        if counts is None:
            counts = count_graphlets(graph)
            self._graphlet_counts[graph.name] = counts
        for key, value in counts.items():
            self._pooled_graphlets[key] += sign * value
        if sign < 0:
            self._graphlet_counts.pop(graph.name, None)

    def gfd(self) -> Dict[str, float]:
        """Current pooled graphlet frequency distribution."""
        total = sum(self._pooled_graphlets.values())
        if total == 0:
            return {key: 0.0 for key in GRAPHLET_KEYS}
        return {key: value / total
                for key, value in self._pooled_graphlets.items()}

    def _feature_of(self, graph: Graph) -> List[float]:
        return feature_vector_from_vocabulary(
            graph, self._vocabulary, self.config.max_tree_edges)

    def _initialize(self) -> None:
        deadline = Deadline.start(self.config.deadline_s)
        report = CompletionReport()
        with capture("midas.initialize", force=self.config.trace,
                     graphs=len(self._graphs)) as run:
            graphs = self.graphs()
            with span("midas.fct") as stage:
                self.fct.build(graphs)
                for graph in graphs:
                    self._account_graphlets(graph, +1)
                self._gfd = self.gfd()
                self._vocabulary = self.fct.frequent_closed()
                stage.add("vocabulary", len(self._vocabulary))
                report.record("fct", 1, 1)
            with span("midas.cluster") as stage:
                k = self.config.clusters \
                    or default_cluster_count(len(graphs))
                if deadline.check("midas.cluster"):
                    # degrade to a single cluster rather than spend
                    # an exhausted budget on the distance matrix
                    labels = [0] * len(graphs)
                    report.record("cluster", 0, 1,
                                  note="deadline expired; "
                                       "single-cluster fallback")
                elif self._vocabulary:
                    matrix = [self._feature_of(g) for g in graphs]
                    distances = distance_matrix_from_vectors(
                        matrix, "euclidean",
                        workers=self.config.workers)
                    clustering = kmedoids(distances, k,
                                          seed=self.config.seed)
                    labels = clustering.labels
                    report.record("cluster", 1, 1)
                else:
                    labels = [0] * len(graphs)
                    report.record("cluster", 1, 1)
                for graph, label in zip(graphs, labels):
                    self.membership[graph.name] = label
                self._centroids = self._compute_centroids()
                stage.add("clusters",
                          len(set(self.membership.values())))
            with span("midas.summaries") as stage:
                self._rebuild_summaries(set(self.membership.values()),
                                        deadline, report)
                stage.add("summaries", len(self.summaries))
            with span("midas.candidates") as stage:
                candidates = self._walk_candidates(
                    set(self.summaries), deadline, report)
                stage.add("candidates", len(candidates))
            with span("midas.select") as stage:
                scorer = self._make_scorer()
                selection = greedy_select(candidates, self.budget,
                                          scorer, deadline=deadline,
                                          workers=self.config.workers)
                stage.add("evaluations", selection.evaluations)
                report.record("select", len(selection.patterns),
                              self.budget.max_patterns,
                              complete=selection.complete
                              and not selection.faults)
            self.patterns = selection.patterns
            self.last_score = selection.score
            if report.degraded:
                run.add("degraded", "true")
        self.trace = run.record
        self.completion = report
        self._publish_cache_gauges()

    @property
    def degraded(self) -> bool:
        """True when initialisation stopped short of its full work."""
        return self.completion.degraded

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _cluster_members(self, cluster: int) -> List[Graph]:
        return [self._graphs[name]
                for name, label in self.membership.items()
                if label == cluster]

    def _rebuild_summaries(self, clusters: Set[int],
                           deadline: Optional[Deadline] = None,
                           report: Optional[CompletionReport] = None
                           ) -> None:
        """Rebuild the CSGs of ``clusters`` (anytime: at least one,
        then poll the deadline; clusters cut off keep their stale
        summary, which is still a valid candidate source)."""
        deadline = deadline or Deadline(None)
        done = 0
        ordered = sorted(clusters)
        for cluster in ordered:
            if done and deadline.check("midas.summaries"):
                break
            members = self._cluster_members(cluster)
            if members:
                self.summaries[cluster] = build_summary(members)
            else:
                self.summaries.pop(cluster, None)
            done += 1
        if report is not None:
            report.record("summaries", done, len(ordered))

    def _compute_centroids(self) -> Dict[int, List[float]]:
        centroids: Dict[int, List[float]] = {}
        if not self._vocabulary:
            return centroids
        sums: Dict[int, List[float]] = {}
        counts: Dict[int, int] = {}
        for name, label in self.membership.items():
            vector = self._feature_of(self._graphs[name])
            if label not in sums:
                sums[label] = [0.0] * len(vector)
                counts[label] = 0
            sums[label] = [a + b for a, b in zip(sums[label], vector)]
            counts[label] += 1
        for label, total in sums.items():
            centroids[label] = [value / counts[label] for value in total]
        return centroids

    def _nearest_cluster(self, graph: Graph) -> int:
        if not self._centroids:
            return next(iter(self.summaries), 0)
        vector = self._feature_of(graph)
        return min(self._centroids,
                   key=lambda c: vector_euclidean(vector,
                                                  self._centroids[c]))

    def _walk_candidates(self, clusters: Set[int],
                         deadline: Optional[Deadline] = None,
                         report: Optional[CompletionReport] = None
                         ) -> List[Pattern]:
        """Candidate patterns walked out of the given clusters' CSGs.

        Anytime and fault-tolerant: clusters are processed in order
        with a deadline poll after each (the first always runs), and
        a matcher call that raises :class:`repro.errors.WorkerFailure`
        inside a validator merely rejects that candidate — counted,
        never propagated.
        """
        deadline = deadline or Deadline(None)
        candidates: List[Pattern] = []
        seen: Set[str] = set()
        targets = [c for c in sorted(clusters) if c in self.summaries]
        done = 0
        faults = 0
        for cluster in targets:
            if done and deadline.check("midas.candidates"):
                break
            summary = self.summaries[cluster]
            members = self._cluster_members(cluster)[:8]

            def validator(candidate: Graph,
                          probe: List[Graph] = members) -> bool:
                nonlocal faults
                try:
                    return any(cached_is_subgraph(
                        candidate, m, cache=self._match_cache)
                        for m in probe)
                except WorkerFailure:
                    faults += 1
                    return False

            for pattern in generate_candidates(
                    summary, self.budget, self.config.walks_per_cluster,
                    self._rng, source=f"midas:cluster{cluster}",
                    validator=validator):
                if pattern.code not in seen:
                    seen.add(pattern.code)
                    candidates.append(pattern)
            done += 1
        if faults:
            metrics.inc("midas.validator.faults", faults)
        if report is not None:
            report.record("candidates", done, len(targets),
                          complete=done >= len(targets)
                          and not faults,
                          note=f"{faults} validator fault(s)"
                          if faults else "")
        return candidates

    def _make_scorer(self) -> SetScorer:
        graphs = self.graphs()
        sample = graphs
        if len(sample) > self.config.coverage_sample:
            sample = self._rng.sample(graphs, self.config.coverage_sample)
        index = CoverageIndex(sample,
                              max_embeddings=self.config.max_embeddings,
                              size_utility=True,
                              cache=self._match_cache,
                              use_cache=self.config.use_cache)
        return SetScorer(index, weights=self.config.weights)

    def cache_stats(self) -> Optional[Dict[str, float]]:
        """Hit/miss counters of the engine's match cache (None if off).

        Deprecated entry point: the same counters are published as
        ``midas.cache.*`` gauges in :func:`repro.obs.snapshot` after
        initialisation and after every batch.
        """
        if self._match_cache is None:
            return None
        return self._match_cache.stats()

    def _publish_cache_gauges(self) -> None:
        stats = self.cache_stats()
        if stats is None:
            return
        for key, value in stats.items():
            metrics.set_gauge(f"midas.cache.{key}", value)

    @property
    def stats(self) -> Dict[str, object]:
        """Flat engine statistics in the shared PipelineResult shape."""
        data: Dict[str, object] = {
            "pipeline": "midas",
            "patterns": len(self.patterns),
            "graphs": len(self._graphs),
            "batches": self._batch_index,
            "score": self.last_score,
            "degraded": self.degraded,
            "completion": self.completion.as_dict(),
        }
        cache = self.cache_stats()
        if cache is not None:
            data["cache"] = cache
        return data

    # ------------------------------------------------------------------
    # batch application
    # ------------------------------------------------------------------
    def _validate_batch(self, batch: UpdateBatch
                        ) -> "tuple[List[str], List[Graph], List[QuarantinedOp]]":
        """Split a batch into applicable ops and a quarantine list.

        Validation happens *before* any mutation, so a malformed op
        can neither corrupt engine state mid-batch nor abort the
        valid remainder: unknown removals and duplicate/unnamed
        additions are skipped and reported, everything else applies.
        """
        quarantine: List[QuarantinedOp] = []
        removals: List[str] = []
        seen_removed: Set[str] = set()
        for name in batch.removed:
            if name not in self._graphs or name in seen_removed:
                quarantine.append(QuarantinedOp(
                    "remove", str(name), "unknown graph"))
                continue
            seen_removed.add(name)
            removals.append(name)
        additions: List[Graph] = []
        seen_added: Set[str] = set()
        for graph in batch.added:
            if not graph.name:
                quarantine.append(QuarantinedOp(
                    "add", "", "graph needs a name"))
                continue
            occupied = (graph.name in self._graphs
                        and graph.name not in seen_removed)
            if occupied or graph.name in seen_added:
                quarantine.append(QuarantinedOp(
                    "add", graph.name, "duplicate graph name"))
                continue
            seen_added.add(graph.name)
            additions.append(graph)
        return removals, additions, quarantine

    def apply_batch(self, batch: UpdateBatch) -> MaintenanceReport:
        """Apply one update batch and maintain the pattern set.

        Invalid operations are quarantined (skipped, counted, and
        listed on the report) while the valid remainder of the batch
        is applied — the engine never raises on malformed batch
        content and never mutates state for an op that will fail.
        """
        start = time.perf_counter()
        self._batch_index += 1
        modified: Set[int] = set()
        stats: Optional[SwapStats] = None
        deadline = Deadline.start(self.config.deadline_s)
        report = CompletionReport()

        with capture("midas.apply_batch", force=self.config.trace,
                     batch=self._batch_index) as run:
            with span("midas.update") as stage:
                removals, additions, quarantine = \
                    self._validate_batch(batch)
                for name in removals:
                    graph = self._graphs.pop(name)
                    self.fct.remove_graph(graph)
                    self._account_graphlets(graph, -1)
                    modified.add(self.membership.pop(name))
                for graph in additions:
                    self._graphs[graph.name] = graph
                    self.fct.add_graph(graph)
                    self._account_graphlets(graph, +1)
                    cluster = self._nearest_cluster(graph)
                    self.membership[graph.name] = cluster
                    modified.add(cluster)
                stage.add("added", len(additions))
                stage.add("removed", len(removals))
                if quarantine:
                    stage.add("quarantined", len(quarantine))
                    metrics.inc("midas.quarantined", len(quarantine))
                ops = len(batch.added) + len(batch.removed)
                report.record("update", ops - len(quarantine), ops,
                              note=f"{len(quarantine)} op(s) "
                              "quarantined" if quarantine else "")

            # drift accumulates since the last time patterns were
            # (re)selected; minor batches do not reset the baseline
            drift = gfd_distance(self._gfd, self.gfd())
            with span("midas.summaries") as stage:
                self._rebuild_summaries(modified, deadline, report)
                stage.add("modified", len(modified))

            with span("midas.score"):
                scorer = self._make_scorer()
                score_before = scorer.score(list(self.patterns))

            if drift < self.config.drift_threshold:
                kind = "minor"
                score_after = score_before
                run.add("kind", kind)
            else:
                # major modification: refresh vocabulary + centroids,
                # then swap
                kind = "major"
                run.add("kind", kind)
                with span("midas.refresh"):
                    self._gfd = self.gfd()
                    self._vocabulary = self.fct.frequent_closed()
                    self._centroids = self._compute_centroids()
                with span("midas.candidates") as stage:
                    candidates = self._walk_candidates(
                        modified, deadline, report)
                    stage.add("candidates", len(candidates))
                with span("midas.swap"):
                    swapped, stats = multi_scan_swap(
                        list(self.patterns), candidates, scorer,
                        max_scans=self.config.max_scans,
                        prune=self.config.prune)
                    patterns = PatternSet(swapped)
                    # fill the budget if the set is short of it
                    if len(patterns) < self.budget.max_patterns:
                        selection = greedy_select(
                            candidates, self.budget, scorer,
                            seed_patterns=list(patterns),
                            deadline=deadline,
                            workers=self.config.workers)
                        patterns = selection.patterns
                        report.record(
                            "select", len(patterns),
                            self.budget.max_patterns,
                            complete=selection.complete
                            and not selection.faults)
                self.patterns = patterns
                score_after = scorer.score(list(patterns))
                self.last_score = score_after
            if quarantine or report.degraded:
                run.add("degraded", "true")

        metrics.inc("midas.batches")
        metrics.inc(f"midas.batches.{kind}")
        self._publish_cache_gauges()
        duration = time.perf_counter() - start
        return MaintenanceReport(
            self._batch_index, kind, drift,
            added=len(additions), removed=len(removals),
            modified_clusters=len(modified), swap_stats=stats,
            duration=duration, score_before=score_before,
            score_after=score_after, trace=run.record,
            quarantine=quarantine, completion=report)
