"""Multi-scan swapping: MIDAS's pattern-set update strategy.

Given the current canned patterns and a candidate pool mined from the
modified clusters, repeatedly scan the candidates and apply any swap
(candidate in, current pattern out) that strictly improves the
pattern-set score.  Because only improving swaps are applied, the
maintained set's quality is guaranteed to be at least that of the
original — the invariant the MIDAS paper states.

Two pruning devices keep scans cheap:

* **coverage upper bound** — a candidate whose solo coverage is below
  the smallest marginal coverage in the current set can only win on
  diversity/load, so it is skipped when it also has a higher
  cognitive load than every current pattern;
* **covered-graph index** — candidates covering no indexed graph are
  dropped outright.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.obs import metrics, span
from repro.patterns.base import Pattern
from repro.patterns.index import CoverageIndex
from repro.patterns.selection import SetScorer


class SwapStats:
    """What a swapping run did (for E6's ablation reporting).

    ``cache_hits``/``cache_misses`` are the match-cache deltas over
    the run when the scorer's coverage index is cache-backed: scans
    after the first re-ask mostly-identical coverage questions, so a
    healthy run shows hits dominating from scan 2 onward.
    """

    __slots__ = ("scans", "swaps", "considered", "pruned",
                 "score_before", "score_after", "cache_hits",
                 "cache_misses")

    def __init__(self) -> None:
        self.scans = 0
        self.swaps = 0
        self.considered = 0
        self.pruned = 0
        self.score_before = 0.0
        self.score_after = 0.0
        self.cache_hits = 0
        self.cache_misses = 0

    def __repr__(self) -> str:
        return (f"<SwapStats scans={self.scans} swaps={self.swaps} "
                f"pruned={self.pruned} "
                f"score {self.score_before:.3f}->{self.score_after:.3f}>")


def _min_marginal_coverage(patterns: Sequence[Pattern],
                           index: CoverageIndex) -> float:
    """Smallest marginal coverage any current pattern contributes."""
    smallest = float("inf")
    for i, pattern in enumerate(patterns):
        rest = [p for j, p in enumerate(patterns) if j != i]
        marginal = index.marginal_coverage(pattern, rest)
        smallest = min(smallest, marginal)
    return 0.0 if smallest == float("inf") else smallest


def _prunable(candidate: Pattern, patterns: Sequence[Pattern],
              index: CoverageIndex, scorer: SetScorer,
              min_marginal: float) -> bool:
    if not index.covered_graphs(candidate):
        return True
    if index.solo_coverage(candidate) < min_marginal:
        # cannot improve coverage; prune unless it could still win on
        # cognitive load (strictly lighter than some current pattern)
        lightest = min(scorer.mean_load([p]) for p in patterns) \
            if patterns else 0.0
        if scorer.mean_load([candidate]) >= lightest:
            return True
    return False


def multi_scan_swap(current: Sequence[Pattern],
                    candidates: Sequence[Pattern],
                    scorer: SetScorer,
                    max_scans: int = 3,
                    prune: bool = True) -> Tuple[List[Pattern], SwapStats]:
    """Improve ``current`` by score-increasing swaps with ``candidates``.

    Returns the (possibly unchanged) new pattern list and statistics.
    The returned score is never below the input score.
    """
    stats = SwapStats()
    patterns: List[Pattern] = list(current)
    index = scorer.index
    cache_before = index.cache_stats()
    current_score = scorer.score(patterns)
    stats.score_before = current_score
    existing_codes = {p.code for p in patterns}
    pool = [c for c in candidates if c.code not in existing_codes]

    for _ in range(max_scans):
        stats.scans += 1
        improved = False
        with span("midas.swap_scan", scan=stats.scans) as scan:
            considered_before = stats.considered
            swaps_before = stats.swaps
            min_marginal = _min_marginal_coverage(patterns, index)
            for candidate in pool:
                if candidate.code in existing_codes:
                    continue
                stats.considered += 1
                if prune and _prunable(candidate, patterns, index,
                                       scorer, min_marginal):
                    stats.pruned += 1
                    continue
                best_swap: Optional[int] = None
                best_score = current_score
                for i in range(len(patterns)):
                    trial = patterns[:i] + [candidate] + patterns[i + 1:]
                    score = scorer.score(trial)
                    if score > best_score + 1e-12:
                        best_score = score
                        best_swap = i
                if best_swap is not None:
                    existing_codes.discard(patterns[best_swap].code)
                    patterns[best_swap] = candidate
                    existing_codes.add(candidate.code)
                    current_score = best_score
                    stats.swaps += 1
                    improved = True
                    min_marginal = _min_marginal_coverage(patterns, index)
            scan.add("considered", stats.considered - considered_before)
            scan.add("swaps", stats.swaps - swaps_before)
        if not improved:
            break
    stats.score_after = current_score
    cache_after = index.cache_stats()
    if cache_before is not None and cache_after is not None:
        stats.cache_hits = int(cache_after["hits"] - cache_before["hits"])
        stats.cache_misses = int(cache_after["misses"]
                                 - cache_before["misses"])
    metrics.inc("midas.swap.runs")
    metrics.inc("midas.swap.scans", stats.scans)
    metrics.inc("midas.swap.swaps", stats.swaps)
    metrics.inc("midas.swap.considered", stats.considered)
    metrics.inc("midas.swap.pruned", stats.pruned)
    return patterns, stats
