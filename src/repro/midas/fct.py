"""Incrementally-maintained frequent closed trees (FCT).

MIDAS swaps CATAPULT's plain frequent-subtree features for frequent
*closed* trees because closedness survives batch updates: supports
can be adjusted per touched graph without re-mining the untouched
rest of the repository.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.clustering.features import (
    DEFAULT_TREE_EDGES,
    MinedTree,
    closed_frequent_trees,
    connected_tree_subgraphs,
)
from repro.graph.graph import Graph
from repro.matching.canonical import canonical_code


class FCTIndex:
    """Supports of all subtrees, with frequent-closed-tree views.

    The index stores *all* subtree supports (document frequency) so a
    batch update only needs the tree codes of the touched graphs.
    """

    def __init__(self, min_support: int = 2,
                 max_edges: int = DEFAULT_TREE_EDGES) -> None:
        self.min_support = min_support
        self.max_edges = max_edges
        self._supports: Dict[str, int] = {}
        self._representatives: Dict[str, Graph] = {}
        self._graph_count = 0

    # -- bookkeeping ------------------------------------------------------
    def _codes_of(self, graph: Graph) -> Set[str]:
        codes: Set[str] = set()
        for _, subtree in connected_tree_subgraphs(graph, self.max_edges):
            code = canonical_code(subtree)
            if code not in codes:
                codes.add(code)
                if code not in self._representatives:
                    self._representatives[code] = subtree.normalized()
        return codes

    def build(self, repository: Sequence[Graph]) -> None:
        """Initialise from a full repository."""
        self._supports.clear()
        self._representatives.clear()
        self._graph_count = 0
        for graph in repository:
            self.add_graph(graph)

    def add_graph(self, graph: Graph) -> None:
        """Account for one added graph."""
        for code in self._codes_of(graph):
            self._supports[code] = self._supports.get(code, 0) + 1
        self._graph_count += 1

    def remove_graph(self, graph: Graph) -> None:
        """Account for one removed graph."""
        for code in self._codes_of(graph):
            remaining = self._supports.get(code, 0) - 1
            if remaining <= 0:
                self._supports.pop(code, None)
            else:
                self._supports[code] = remaining
        self._graph_count -= 1

    # -- views --------------------------------------------------------------
    @property
    def graph_count(self) -> int:
        return self._graph_count

    def support(self, code: str) -> int:
        return self._supports.get(code, 0)

    def frequent_trees(self) -> List[MinedTree]:
        """All frequent subtrees at the current min_support."""
        return [MinedTree(code, self._representatives[code], support)
                for code, support in sorted(self._supports.items())
                if support >= self.min_support]

    def frequent_closed(self) -> List[MinedTree]:
        """The frequent *closed* trees (the clustering vocabulary)."""
        return closed_frequent_trees(self.frequent_trees())

    def __len__(self) -> int:
        return len(self._supports)
