"""MIDAS: canned-pattern maintenance under batch updates."""

from repro.midas.fct import FCTIndex
from repro.midas.maintenance import (
    MaintenanceReport,
    Midas,
    MidasConfig,
)
from repro.midas.swapping import SwapStats, multi_scan_swap

__all__ = [
    "FCTIndex",
    "MaintenanceReport",
    "Midas",
    "MidasConfig",
    "SwapStats",
    "multi_scan_swap",
]
