"""k-truss decomposition (Wang & Cheng, PVLDB 2012).

The *trussness* of an edge e is the largest k such that e belongs to
the k-truss: the maximal subgraph in which every edge participates in
at least k-2 triangles.  TATTOO uses trussness to split a large
network into a dense, triangle-rich *truss-infested* region (where
triangle-like query topologies live) and a sparse *truss-oblivious*
remainder (chains, stars, trees, large cycles).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.graph import Graph, edge_key
from repro.graph.operations import edge_subgraph

#: edges with trussness >= this belong to the truss-infested region
DEFAULT_TRUSS_THRESHOLD = 3


def edge_support(graph: Graph) -> Dict[Tuple[int, int], int]:
    """Number of triangles each edge participates in."""
    support: Dict[Tuple[int, int], int] = {
        edge_key(u, v): 0 for u, v in graph.edges()}
    for u, v in graph.edges():
        small, big = (u, v) if graph.degree(u) <= graph.degree(v) else (v, u)
        for w in graph.neighbors(small):
            if w != big and graph.has_edge(w, big):
                support[edge_key(u, v)] += 1
    return support


def truss_decomposition(graph: Graph) -> Dict[Tuple[int, int], int]:
    """Trussness of every edge, by iterative peeling.

    Runs in roughly O(m^1.5) like the reference algorithm: edges are
    peeled in increasing support order; removing an edge decrements
    the support of the edges it formed triangles with.
    """
    work = graph.copy()
    support = edge_support(work)
    trussness: Dict[Tuple[int, int], int] = {}
    k = 2
    # bucket-less peeling: repeatedly remove minimum-support edges
    remaining = set(support)
    while remaining:
        # all edges with support <= k - 2 have trussness k
        queue = [e for e in remaining if support[e] <= k - 2]
        while queue:
            u, v = queue.pop()
            key = edge_key(u, v)
            if key not in remaining:
                continue
            remaining.discard(key)
            trussness[key] = k
            # decrement support of triangle partners
            small, big = (u, v) if work.degree(u) <= work.degree(v) \
                else (v, u)
            for w in list(work.neighbors(small)):
                if w != big and work.has_edge(w, big):
                    for other in (edge_key(small, w), edge_key(big, w)):
                        if other in remaining:
                            support[other] -= 1
                            if support[other] <= k - 2:
                                queue.append(other)
            work.remove_edge(u, v)
        k += 1
    return trussness


def max_trussness(graph: Graph) -> int:
    """Largest edge trussness (2 for triangle-free, 0 if no edges)."""
    decomposition = truss_decomposition(graph)
    if not decomposition:
        return 0
    return max(decomposition.values())


def split_by_truss(graph: Graph,
                   threshold: int = DEFAULT_TRUSS_THRESHOLD
                   ) -> Tuple[Graph, Graph]:
    """Split into (truss-infested G_T, truss-oblivious G_O).

    G_T is the edge subgraph of edges with trussness >= ``threshold``
    (every edge in >= threshold-2 triangles within G_T); G_O holds the
    rest.  Node sets may overlap, mirroring TATTOO's decomposition.
    """
    if threshold < 3:
        raise ValueError("truss threshold must be >= 3")
    trussness = truss_decomposition(graph)
    dense = [e for e, k in trussness.items() if k >= threshold]
    sparse = [e for e, k in trussness.items() if k < threshold]
    g_t = edge_subgraph(graph, dense, name=f"{graph.name}:truss")
    g_o = edge_subgraph(graph, sparse, name=f"{graph.name}:oblivious")
    return g_t, g_o


def truss_statistics(graph: Graph) -> Dict[str, float]:
    """Summary statistics of a decomposition (for the E5 experiment)."""
    trussness = truss_decomposition(graph)
    if not trussness:
        return {"edges": 0, "max_trussness": 0, "infested_fraction": 0.0}
    values: List[int] = list(trussness.values())
    infested = sum(1 for k in values if k >= DEFAULT_TRUSS_THRESHOLD)
    return {
        "edges": float(len(values)),
        "max_trussness": float(max(values)),
        "infested_fraction": infested / len(values),
    }
