"""k-truss decomposition (Wang & Cheng, PVLDB 2012).

The *trussness* of an edge e is the largest k such that e belongs to
the k-truss: the maximal subgraph in which every edge participates in
at least k-2 triangles.  TATTOO uses trussness to split a large
network into a dense, triangle-rich *truss-infested* region (where
triangle-like query topologies live) and a sparse *truss-oblivious*
remainder (chains, stars, trees, large cycles).

:func:`truss_decomposition` peels with a support-indexed bucket queue:
every edge is bucketed by its current support, the scan pointer only
moves forward (supports are clamped at the current peel level, the
standard bin-sort trick from core decomposition), and decremented
edges are re-bucketed with stale entries skipped lazily.  The result
is one pass over the edge set plus O(1) work per support decrement —
no per-level rescans.  :func:`truss_decomposition_rescan` keeps the
original peeler, which rescanned all remaining edges at every level
(O(m) per level); it serves as the equivalence oracle in tests and
the baseline in ``benchmarks/bench_kernel.py``.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.graph.graph import Graph, edge_key
from repro.graph.operations import edge_subgraph
from repro.errors import OptionError

#: edges with trussness >= this belong to the truss-infested region
DEFAULT_TRUSS_THRESHOLD = 3


def edge_support(graph: Graph) -> Dict[Tuple[int, int], int]:
    """Number of triangles each edge participates in.

    Counted over the compact CSR view: per edge, the endpoint slices
    are intersected by scanning the smaller and binary-searching the
    larger (:meth:`repro.graph.compact.CompactGraph.common_neighbors`)
    — no per-edge set materialisation.  Iteration stays in edge
    insertion order, so the support map's order (which seeds the
    peeler's buckets) is unchanged from the dict-based version.
    """
    c = graph.compact()
    position = c.index()
    support: Dict[Tuple[int, int], int] = {}
    for u, v in graph.edges():
        support[edge_key(u, v)] = \
            c.common_neighbors(position[u], position[v])
    return support


def truss_decomposition(graph: Graph) -> Dict[Tuple[int, int], int]:
    """Trussness of every edge, by bucket-queue peeling.

    Edges sit in buckets indexed by current support; the minimum
    bucket is peeled, triangle partners are decremented and
    re-bucketed (clamped at the current level so the scan pointer
    never retreats), and stale bucket entries — left behind by
    decrements — are skipped when popped.  One pass over the edges
    total, versus the per-level full rescans of
    :func:`truss_decomposition_rescan`.
    """
    support = edge_support(graph)
    if not support:
        return {}
    # mutable adjacency for peeling, seeded from the compact CSR
    # slices (already materialised for edge_support) and converted
    # back to original node ids — the peel loop works on edge keys
    ids = graph.compact().node_ids
    offsets = graph.compact().offsets
    csr_neighbors = graph.compact().neighbors
    adj: Dict[int, Set[int]] = {
        ids[p]: {ids[csr_neighbors[slot]]
                 for slot in range(offsets[p], offsets[p + 1])}
        for p in range(len(ids))}
    max_support = max(support.values())
    buckets: List[List[Tuple[int, int]]] = \
        [[] for _ in range(max_support + 1)]
    for edge, s in support.items():
        buckets[s].append(edge)
    trussness: Dict[Tuple[int, int], int] = {}
    total = len(support)
    level = 0
    while len(trussness) < total:
        bucket = buckets[level]
        if not bucket:
            level += 1
            continue
        edge = bucket.pop()
        if edge in trussness or support[edge] != level:
            continue  # stale entry from an earlier decrement
        u, v = edge
        trussness[edge] = level + 2
        small, big = (u, v) if len(adj[u]) <= len(adj[v]) else (v, u)
        for w in adj[small] & adj[big]:
            for other in (edge_key(small, w), edge_key(big, w)):
                if other in trussness:
                    continue
                # clamp at the current level: an edge cannot peel
                # below the level that is already being peeled
                new_support = max(support[other] - 1, level)
                support[other] = new_support
                buckets[new_support].append(other)
        adj[u].discard(v)
        adj[v].discard(u)
    return trussness


def truss_decomposition_rescan(graph: Graph) -> Dict[Tuple[int, int], int]:
    """Trussness by the original per-level-rescan peeler.

    Kept as the oracle :func:`truss_decomposition` is tested against:
    at every level k it rescans all remaining edges for support
    <= k - 2 (O(m) per level) and physically removes peeled edges
    from a working copy.  Produces the same trussness map as the
    bucketed peeler on every graph.
    """
    work = graph.copy()
    support = edge_support(work)
    trussness: Dict[Tuple[int, int], int] = {}
    k = 2
    # bucket-less peeling: repeatedly remove minimum-support edges
    remaining = set(support)
    while remaining:
        # all edges with support <= k - 2 have trussness k
        queue = [e for e in remaining if support[e] <= k - 2]
        while queue:
            u, v = queue.pop()
            key = edge_key(u, v)
            if key not in remaining:
                continue
            remaining.discard(key)
            trussness[key] = k
            # decrement support of triangle partners
            small, big = (u, v) if work.degree(u) <= work.degree(v) \
                else (v, u)
            for w in work.neighbors(small):
                if w != big and work.has_edge(w, big):
                    for other in (edge_key(small, w), edge_key(big, w)):
                        if other in remaining:
                            support[other] -= 1
                            if support[other] <= k - 2:
                                queue.append(other)
            work.remove_edge(u, v)
        k += 1
    return trussness


def max_trussness(graph: Graph) -> int:
    """Largest edge trussness (2 for triangle-free, 0 if no edges)."""
    decomposition = truss_decomposition(graph)
    if not decomposition:
        return 0
    return max(decomposition.values())


def split_by_truss(graph: Graph,
                   threshold: int = DEFAULT_TRUSS_THRESHOLD
                   ) -> Tuple[Graph, Graph]:
    """Split into (truss-infested G_T, truss-oblivious G_O).

    G_T is the edge subgraph of edges with trussness >= ``threshold``
    (every edge in >= threshold-2 triangles within G_T); G_O holds the
    rest.  Node sets may overlap, mirroring TATTOO's decomposition.
    """
    if threshold < 3:
        raise OptionError("truss threshold must be >= 3")
    trussness = truss_decomposition(graph)
    dense = [e for e, k in trussness.items() if k >= threshold]
    sparse = [e for e, k in trussness.items() if k < threshold]
    g_t = edge_subgraph(graph, dense, name=f"{graph.name}:truss")
    g_o = edge_subgraph(graph, sparse, name=f"{graph.name}:oblivious")
    return g_t, g_o


def truss_statistics(graph: Graph) -> Dict[str, float]:
    """Summary statistics of a decomposition (for the E5 experiment)."""
    trussness = truss_decomposition(graph)
    if not trussness:
        return {"edges": 0, "max_trussness": 0, "infested_fraction": 0.0}
    values: List[int] = list(trussness.values())
    infested = sum(1 for k in values if k >= DEFAULT_TRUSS_THRESHOLD)
    return {
        "edges": float(len(values)),
        "max_trussness": float(max(values)),
        "infested_fraction": infested / len(values),
    }
