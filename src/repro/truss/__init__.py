"""k-truss decomposition substrate for TATTOO."""

from repro.truss.decomposition import (
    DEFAULT_TRUSS_THRESHOLD,
    edge_support,
    max_trussness,
    split_by_truss,
    truss_decomposition,
    truss_decomposition_rescan,
    truss_statistics,
)

__all__ = [
    "DEFAULT_TRUSS_THRESHOLD",
    "edge_support",
    "max_trussness",
    "split_by_truss",
    "truss_decomposition",
    "truss_decomposition_rescan",
    "truss_statistics",
]
