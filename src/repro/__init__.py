"""repro: data-driven visual query interfaces for graphs.

A from-scratch reproduction of the systems surveyed in "Data-driven
Visual Query Interfaces for Graphs: Past, Present, and (Near) Future"
(Bhowmick & Choi, SIGMOD 2022): CATAPULT, TATTOO, and MIDAS canned-
pattern selection/maintenance, a modular selection architecture, a
headless four-panel VQI model, and a simulated usability harness.

Start with :mod:`repro.core`::

    from repro.core import build_vqi, PatternBudget
"""

from repro.core import (
    MaintainedVQI,
    Pattern,
    PatternBudget,
    PatternSet,
    VisualQueryInterface,
    VQISpec,
    build_maintained_vqi,
    build_vqi,
)

__version__ = "1.0.0"

__all__ = [
    "MaintainedVQI",
    "Pattern",
    "PatternBudget",
    "PatternSet",
    "VisualQueryInterface",
    "VQISpec",
    "build_maintained_vqi",
    "build_vqi",
    "__version__",
]
