"""Quickstart: build a data-driven VQI and run a visual query.

Run:  python examples/quickstart.py
"""

from repro.core import PatternBudget, build_vqi
from repro.datasets import generate_chemical_repository


def main() -> None:
    # 1. A graph repository (stand-in for PubChem-style data).
    repository = generate_chemical_repository(80, seed=7)
    print(f"repository: {len(repository)} molecule-like graphs")

    # 2. One call builds the whole interface: attribute alphabets are
    #    traversed from the data and canned patterns are selected by
    #    CATAPULT under the display budget.
    budget = PatternBudget(max_patterns=6, min_size=4, max_size=8)
    vqi = build_vqi(repository, budget, source_name="chem-demo")
    print(f"built: {vqi}")
    print("attribute panel:", vqi.attribute_panel.node_alphabet())
    print("canned patterns:",
          [(p.order(), p.size()) for p in vqi.pattern_panel.canned])

    # 3. Formulate a query in pattern-at-a-time mode: drop a canned
    #    pattern onto the canvas (one gesture instead of many).
    pattern = vqi.pattern_panel.canned[0]
    vqi.query_panel.builder.add_pattern(pattern)
    print(f"query: {vqi.query_panel.builder!r}")

    # 4. Execute; the engine prunes by labels, then matches with VF2.
    results = vqi.execute()
    print(f"results: {results.match_count()} graphs matched, "
          f"{results.embedding_count()} embeddings, "
          f"{results.graphs_pruned} graphs pruned by the label index")

    # 5. The whole interface is a portable JSON spec.
    spec_json = vqi.spec.to_json()
    print(f"VQI spec: {len(spec_json)} bytes of JSON")

    # 6. ...and the Pattern Panel renders headlessly to SVG.
    svg = vqi.render_pattern_panel()
    out = "pattern_panel.svg"
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(svg)
    print(f"pattern panel written to {out}")


if __name__ == "__main__":
    main()
