"""Evolving-repository scenario: MIDAS pattern maintenance.

A chemical repository receives daily batches of new structures (the
paper cites ~4,000/day on SciFinder).  MIDAS keeps the VQI's canned
patterns fresh: cheap bookkeeping for minor batches, swap-based
maintenance — never degrading quality — when the graphlet
distribution drifts.

Run:  python examples/evolving_database_maintenance.py
"""

import time

from repro.catapult import CatapultConfig, select_canned_patterns
from repro.datasets import (
    EvolvingRepository,
    generate_chemical_repository,
    generate_update_stream,
)
from repro.midas import Midas, MidasConfig
from repro.patterns import PatternBudget


def main() -> None:
    repository = generate_chemical_repository(100, seed=21)
    budget = PatternBudget(max_patterns=6, min_size=4, max_size=8)

    midas = Midas(repository, budget, MidasConfig(seed=2))
    print(f"initial selection: {len(midas.patterns)} canned patterns, "
          f"score {midas.last_score:.3f}")

    evolving = EvolvingRepository([g.copy() for g in repository])
    stream = generate_update_stream(
        evolving, batches=8, batch_size=18, seed=5, drift_after=3,
        drift_weights=(0.05, 0.05, 0.05, 6.0))

    print("\nbatch  kind   drift    maint(s)  rerun(s)  score")
    total_maintenance = 0.0
    total_rerun = 0.0
    for batch in stream:
        evolving.apply(batch)
        report = midas.apply_batch(batch)
        total_maintenance += report.duration

        # what a from-scratch re-selection would have cost instead
        start = time.perf_counter()
        select_canned_patterns(evolving.graphs(), budget,
                               CatapultConfig(seed=2))
        rerun = time.perf_counter() - start
        total_rerun += rerun

        swaps = (f" ({report.swap_stats.swaps} swaps, "
                 f"{report.swap_stats.pruned} pruned)"
                 if report.swap_stats else "")
        print(f"  #{report.batch_index}   {report.kind:<6} "
              f"{report.drift:.4f}  {report.duration:>7.2f}  "
              f"{rerun:>8.2f}  {report.score_after:.3f}{swaps}")

    print(f"\ntotal maintenance time : {total_maintenance:.2f}s")
    print(f"total re-run time      : {total_rerun:.2f}s")
    print(f"MIDAS speedup          : {total_rerun / total_maintenance:.1f}x")


if __name__ == "__main__":
    main()
