"""Beyond graphs: a data-driven sketch-query interface for time series.

The tutorial's "Beyond Graphs" direction (§2.5): the data-driven
paradigm carries over to sketch-based time-series querying.  Canned
*sketches* are mined from the collection (recurring SAX shapes) so a
user can start a query bottom-up from a representative shape instead
of free-drawing from memory.

Run:  python examples/timeseries_sketch_search.py
"""

import numpy as np

from repro.timeseries import (
    SketchBudget,
    SketchVQI,
    generate_series_collection,
)


def ascii_sparkline(values, width=40) -> str:
    """Tiny terminal rendering of a sketch."""
    glyphs = " .:-=+*#%@"
    arr = np.asarray(values, dtype=float)
    if len(arr) > width:
        idx = np.linspace(0, len(arr) - 1, width).astype(int)
        arr = arr[idx]
    lo, hi = arr.min(), arr.max()
    span = (hi - lo) or 1.0
    return "".join(glyphs[int((v - lo) / span * (len(glyphs) - 1))]
                   for v in arr)


def main() -> None:
    collection = generate_series_collection(60, seed=17)
    print(f"collection: {len(collection)} series of "
          f"{len(collection[0])} points (planted spikes, steps, "
          f"ramps, dips, cycles)")

    vqi = SketchVQI(collection, SketchBudget(max_sketches=5, window=40))
    print(f"\nSketch Panel ({len(vqi.panel)} canned sketches):")
    for i, sketch in enumerate(vqi.panel):
        print(f"  [{i}] {sketch.word}  support={sketch.support:<3} "
              f"complexity={sketch.complexity:.2f}  "
              f"{ascii_sparkline(sketch.values)}")

    # bottom-up search: seed from the most supported canned sketch
    best = max(range(len(vqi.panel)),
               key=lambda i: vqi.panel[i].support)
    print(f"\nstarting a query from sketch [{best}] "
          f"({vqi.panel[best].word})...")
    vqi.start_from_sketch(best)
    for match in vqi.execute(top_k=5):
        print(f"  {match.series.name:<6} @{match.start:<4} "
              f"distance={match.distance:.3f}  "
              f"{ascii_sparkline(match.series.window(match.start, 40))}")

    # top-down search: free-drawn double spike
    xs = np.linspace(-4, 4, 40)
    drawn = np.exp(-(xs - 1.5) ** 2) + np.exp(-(xs + 1.5) ** 2)
    print("\nfree-drawing a double-spike sketch...")
    vqi.draw(drawn)
    for match in vqi.execute(top_k=3):
        print(f"  {match.series.name:<6} @{match.start:<4} "
              f"distance={match.distance:.3f}")


if __name__ == "__main__":
    main()
