"""Large-network scenario: TATTOO selection + bottom-up search.

A large collaboration-style network looks like a "hairball"; the
Pattern Panel's canned patterns give the user a bird's-eye view of
the substructures that actually occur, so a query can be started
bottom-up from a representative pattern rather than guessed top-down.

Run:  python examples/social_network_exploration.py
"""

from repro.core import PatternBudget, build_vqi_with_report
from repro.datasets import NetworkConfig, generate_network
from repro.patterns import classify_topology
from repro.tattoo import TattooConfig
from repro.truss import truss_statistics


def main() -> None:
    network = generate_network(
        NetworkConfig(nodes=1200, cliques=25, petals=20, flowers=12),
        seed=11)
    print(f"network: {network.order()} nodes, {network.size()} edges")
    stats = truss_statistics(network)
    print(f"  max trussness {stats['max_trussness']:.0f}, "
          f"{stats['infested_fraction']:.0%} of edges truss-infested")

    budget = PatternBudget(max_patterns=8, min_size=4, max_size=9)
    vqi, report = build_vqi_with_report(
        network, budget, tattoo_config=TattooConfig(seed=3),
        source_name="collab-net")
    print(f"\nbuilt with {report.generator} in {report.duration:.1f}s")
    for stage, seconds in report.details.items():
        print(f"  stage {stage:<10}: {seconds:.2f}s")

    print("\nPattern Panel (bottom-up entry points):")
    for pattern in vqi.pattern_panel.canned:
        topo = classify_topology(pattern.graph).value
        print(f"  {topo:<8} n={pattern.order()} m={pattern.size()} "
              f"from {pattern.source}")

    # bottom-up search: start from a star pattern the panel surfaced
    entry = max(vqi.pattern_panel.canned,
                key=lambda p: p.order())
    print(f"\ndropping the largest pattern "
          f"({classify_topology(entry.graph).value}, "
          f"n={entry.order()}) as a query...")
    vqi.query_panel.builder.add_pattern(entry)
    results = vqi.execute(max_embeddings=10)
    print(f"  {results.embedding_count()} embeddings found; "
          f"result subgraphs shown in the Results Panel")
    aesthetics = vqi.results_panel.aesthetics()
    print(f"  results panel satisfaction (Berlyne): "
          f"{aesthetics['satisfaction']:.2f}")


if __name__ == "__main__":
    main()
