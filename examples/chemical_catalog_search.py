"""Chemical-catalog scenario: CATAPULT selection + usability comparison.

Models the use case from the paper's introduction: domain scientists
searching a catalog of chemical compounds through a visual interface,
without writing graph queries.  Compares query formulation cost on a
manual VQI (edge-at-a-time) against the data-driven VQI.

Run:  python examples/chemical_catalog_search.py
"""

from repro.catapult import CatapultConfig, select_canned_patterns
from repro.datasets import generate_chemical_repository, generate_workload
from repro.patterns import (
    PatternBudget,
    classify_topology,
    default_basic_patterns,
    set_cognitive_load,
    set_diversity,
    set_repository_coverage,
)
from repro.usability import StudyCondition, run_study


def main() -> None:
    repository = generate_chemical_repository(150, seed=42)
    budget = PatternBudget(max_patterns=8, min_size=4, max_size=8)

    # --- selection ---------------------------------------------------
    result = select_canned_patterns(repository, budget,
                                    CatapultConfig(seed=1))
    patterns = list(result.patterns)
    print("CATAPULT selection")
    print(f"  clusters: {len(result.summaries)}  "
          f"candidates: {len(result.candidates)}")
    for key, value in result.timings.items():
        print(f"  stage {key:<11}: {value:.2f}s")
    for pattern in patterns:
        print(f"  pattern n={pattern.order()} m={pattern.size()} "
              f"topology={classify_topology(pattern.graph).value} "
              f"labels={pattern.graph.label_multiset()}")

    print("\npattern-set quality")
    print(f"  edge coverage : "
          f"{set_repository_coverage(patterns, repository):.3f}")
    print(f"  diversity     : {set_diversity(patterns):.3f}")
    print(f"  cognitive load: {set_cognitive_load(patterns):.3f}")

    # --- usability ----------------------------------------------------
    workload = list(generate_workload(repository, 30, seed=2))
    study = run_study(workload, [
        StudyCondition("manual (edge-at-a-time)", []),
        StudyCondition("manual + basic patterns",
                       default_basic_patterns()),
        StudyCondition("data-driven (CATAPULT)",
                       default_basic_patterns() + patterns),
    ], error_probability=0.03, seed=3)

    print("\nusability study (30 queries, simulated users)")
    header = f"  {'condition':<28} {'steps':>6} {'time(s)':>8} " \
             f"{'errors':>7} {'patterns':>9}"
    print(header)
    for row in study.table_rows():
        print(f"  {row['condition']:<28} {row['mean_steps']:>6.1f} "
              f"{row['mean_seconds']:>8.1f} {row['mean_errors']:>7.2f} "
              f"{row['mean_pattern_uses']:>9.2f}")
    reduction = study.step_reduction("manual (edge-at-a-time)",
                                     "data-driven (CATAPULT)")
    speedup = study.speedup("manual (edge-at-a-time)",
                            "data-driven (CATAPULT)")
    print(f"\n  data-driven vs manual: {reduction:.0%} fewer steps, "
          f"{speedup:.2f}x faster")


if __name__ == "__main__":
    main()
