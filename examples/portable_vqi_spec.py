"""Portability scenario: one builder, two data sources, shippable specs.

The data-driven paradigm's portability claim (paper §2.2): the same
construction call produces a complete VQI for *any* graph source, and
the resulting interface content travels as plain JSON that any
front-end can render.

Run:  python examples/portable_vqi_spec.py
"""

from repro.core import PatternBudget, build_vqi
from repro.datasets import (
    NetworkConfig,
    generate_chemical_repository,
    generate_network,
)
from repro.vqi import VQISpec, render_pattern_panel_svg


def main() -> None:
    budget = PatternBudget(max_patterns=6, min_size=4, max_size=8)

    sources = {
        "chemistry": generate_chemical_repository(60, seed=3),
        "collaboration": generate_network(NetworkConfig(nodes=500),
                                          seed=4),
    }

    for name, data in sources.items():
        vqi = build_vqi(data, budget, source_name=name)
        spec_json = vqi.spec.to_json(indent=2)
        path = f"vqi_{name}.json"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(spec_json)
        print(f"{name}: generator={vqi.spec.generator}, "
              f"{len(vqi.pattern_panel.canned)} canned patterns, "
              f"alphabet={vqi.attribute_panel.node_alphabet()[:5]}")
        print(f"  spec written to {path} ({len(spec_json)} bytes)")

        # round-trip: a front-end can reconstruct the panels from JSON
        restored = VQISpec.from_json(spec_json)
        assert restored.pattern_panel.canned.codes() == \
            vqi.spec.pattern_panel.canned.codes()
        svg = render_pattern_panel_svg(
            restored.pattern_panel.all_patterns())
        svg_path = f"vqi_{name}_panel.svg"
        with open(svg_path, "w", encoding="utf-8") as handle:
            handle.write(svg)
        print(f"  panel rendered from the restored spec -> {svg_path}")


if __name__ == "__main__":
    main()
