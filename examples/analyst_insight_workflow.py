"""Analyst workflow: suggestion-guided querying, similarity search,
and pattern-based summarization on one network.

Combines the library's exploratory features end-to-end:

1. build a data-driven VQI over a collaboration network (TATTOO);
2. grow a query with data-driven auto-suggestions (every extension
   is guaranteed answerable);
3. deliberately "over-draw" the query and recover the results with a
   subgraph *similarity* search;
4. compress the whole network into a pattern-based summary for a
   readable overview.

Run:  python examples/analyst_insight_workflow.py
"""

from repro.core import PatternBudget, build_vqi
from repro.datasets import NetworkConfig, generate_network
from repro.query import (
    QueryBuilder,
    QuerySuggester,
    SimilarityQueryEngine,
)
from repro.summary import summarize_with_patterns
from repro.patterns import classify_topology


def main() -> None:
    network = generate_network(
        NetworkConfig(nodes=400, cliques=12, petals=8, flowers=6),
        seed=29)
    budget = PatternBudget(6, min_size=4, max_size=8)
    vqi = build_vqi(network, budget, source_name="collab")
    print(f"network: {network.order()} nodes / {network.size()} edges; "
          f"panel: {len(vqi.pattern_panel.canned)} canned patterns")

    # --- 1. suggestion-guided formulation -----------------------------
    suggester = QuerySuggester([network])
    builder = vqi.query_panel.builder
    label = vqi.attribute_panel.node_alphabet()[0]
    node = builder.add_node(label)
    print(f"\ngrowing a query from a {label!r} node with "
          "answerable suggestions:")
    for _ in range(3):
        suggestions = suggester.suggest_for_query(
            builder, node, top_k=1, answerable_only=True)
        if not suggestions:
            break
        edge_label, nbr_label, count = suggestions[0]
        node = suggester.apply_suggestion(builder, node,
                                          suggestions[0])
        print(f"  + {nbr_label!r} via {edge_label!r} "
              f"(occurs {count}x in the data)")
    results = vqi.execute(max_embeddings=10)
    print(f"  -> {results.embedding_count()} embeddings")

    # --- 2. similarity search rescues an over-drawn query -------------
    over_drawn = builder.query.copy()
    nodes = sorted(over_drawn.nodes())
    if not over_drawn.has_edge(nodes[0], nodes[-1]):
        over_drawn.add_edge(nodes[0], nodes[-1])
    print("\nover-drawing the query (one speculative edge too many):")
    engine = SimilarityQueryEngine([network])
    exact = engine.run(over_drawn, max_missing=0)
    relaxed = engine.run(over_drawn, max_missing=1)
    print(f"  exact matches : {len(exact)}")
    print(f"  within d<=1   : {len(relaxed)} "
          f"(min distance {min((m.distance for m in relaxed), default='-')})")

    # --- 3. pattern-based overview -------------------------------------
    print("\nsummarizing the network with its own canned patterns:")
    summary = summarize_with_patterns(network,
                                      list(vqi.pattern_panel.canned),
                                      max_instances=40)
    shapes = {}
    for instance in summary.instances:
        key = classify_topology(instance.pattern.graph).value
        shapes[key] = shapes.get(key, 0) + 1
    print(f"  {len(summary.instances)} instances collapsed "
          f"({', '.join(f'{v}x {k}' for k, v in sorted(shapes.items()))})")
    print(f"  {network.order()} nodes -> "
          f"{summary.summary.order()} supernodes "
          f"(structure coverage {summary.coverage():.1%})")


if __name__ == "__main__":
    main()
